// Package tablesvc simulates the Windows Azure table storage service as
// measured in Section 3.2 of the paper: schemaless entities addressed by
// (PartitionKey, RowKey), four operations (Insert, Query, Update, Delete)
// with distinct contention behaviour, a partition ingest capacity whose
// overload produces server-side timeout exceptions at large entity sizes and
// high concurrency, and slow property-filter scans that time out under
// concurrency (Section 6.1).
//
// Calibration (per-client ops/s as a function of concurrency, Fig. 2):
//   - Insert/Query decay gently and do not saturate the server through 192
//     clients (γ < 1, knee beyond the tested range).
//   - Update on a single hot entity peaks in aggregate at 8 clients (γ = 2,
//     n0 = 8): unconditional updates still serialise on the entity's row.
//   - Delete peaks in aggregate at 128 clients (γ = 2, n0 = 128).
package tablesvc

import (
	"time"

	"azureobs/internal/netsim"
	"azureobs/internal/sim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/reqpath"
	"azureobs/internal/storage/station"
	"azureobs/internal/storage/storerr"
)

// PropKind tags an entity property type.
type PropKind int

// Property kinds (the paper's test entities use {int, int, String, String}).
const (
	PropInt PropKind = iota
	PropString
)

// Prop is one schemaless entity property.
type Prop struct {
	Kind PropKind
	Int  int64
	Str  string
}

// IntProp builds an integer property.
func IntProp(v int64) Prop { return Prop{Kind: PropInt, Int: v} }

// StrProp builds a string property.
func StrProp(v string) Prop { return Prop{Kind: PropString, Str: v} }

// size returns the property's wire size in bytes.
func (p Prop) size() int {
	if p.Kind == PropInt {
		return 8
	}
	return len(p.Str)
}

// Entity is one table row. PadBytes counts filler payload that contributes
// to the wire size without being materialised — the paper's test entities
// carry a sizing string of up to 64 kB whose content is irrelevant.
type Entity struct {
	PartitionKey string
	RowKey       string
	Props        map[string]Prop
	PadBytes     int
}

// Size returns the entity's payload size in bytes.
func (e *Entity) Size() int {
	n := len(e.PartitionKey) + len(e.RowKey) + e.PadBytes
	for k, p := range e.Props {
		n += len(k) + p.size()
	}
	return n
}

// PaddedEntity builds a paper-style test entity {int, int, String, String}
// padded to the requested total size — the protocol of Section 3.2. The
// fourth (sizing) property is tracked by size only.
func PaddedEntity(pk, rk string, totalSize int) *Entity {
	e := &Entity{
		PartitionKey: pk,
		RowKey:       rk,
		Props: map[string]Prop{
			"A": IntProp(1),
			"B": IntProp(2),
			"C": StrProp("fixed"),
		},
	}
	if pad := totalSize - e.Size(); pad > 0 {
		e.PadBytes = pad
	}
	return e
}

// Config parameterises the service; zero fields take calibrated defaults.
type Config struct {
	Insert, Query, Update, Delete station.Config

	// ServerTimeout is the server-side request deadline; overloaded
	// requests burn this long before failing.
	ServerTimeout time.Duration

	// IngestCapacity is the partition's sustainable write bandwidth. When
	// the offered insert/delete load exceeds it, per-op timeout probability
	// rises as OverloadK·(1−1/ρ) — which reproduces the 64 kB insert
	// survivor counts (94/128 and 89/192 clients finishing 500 ops).
	IngestCapacity netsim.Bandwidth
	OverloadK      float64

	// ScanSecPerEntity and ScanConcurrencyN0 shape property-filter queries:
	// scan latency = entities·ScanSecPerEntity·(1 + n/N0). With ~220k
	// entities and 32 concurrent scanners this exceeds the server timeout
	// more often than not (Section 6.1).
	ScanSecPerEntity  float64
	ScanConcurrencyN0 float64
	ScanCV            float64

	// ClientWriteBW/ClientReadBW convert payload sizes into transfer time
	// added to each op.
	ClientWriteBW netsim.Bandwidth
	ClientReadBW  netsim.Bandwidth

	// Fault injection (default 0; the ModisAzure campaign raises them).
	ConnFailProb   float64
	ServerBusyProb float64
}

// DefaultConfig returns the Fig. 2 calibration.
func DefaultConfig() Config {
	return Config{
		Insert: station.Config{S0: 36 * time.Millisecond, N0: 136, Gamma: 0.9, CV: 0.25},
		Query:  station.Config{S0: 15 * time.Millisecond, N0: 150, Gamma: 0.9, CV: 0.25},
		Update: station.Config{S0: 8 * time.Millisecond, N0: 8, Gamma: 2, CV: 0.3},
		Delete: station.Config{S0: 25 * time.Millisecond, N0: 128, Gamma: 2, CV: 0.3},

		ServerTimeout: 30 * time.Second,

		IngestCapacity: 100 * netsim.MBps,
		OverloadK:      0.0045,

		ScanSecPerEntity:  32e-6,
		ScanConcurrencyN0: 8,
		ScanCV:            0.35,

		ClientWriteBW: 6.5 * netsim.MBps,
		ClientReadBW:  13 * netsim.MBps,
	}
}

// Service is one table storage account endpoint.
type Service struct {
	cfg Config
	rng *simrand.RNG
	pl  *reqpath.Pipeline

	insert, query, update, delete *station.Station

	tables map[string]map[string]map[string]*Entity // table → pk → rk

	scans    int // concurrent property-filter scans
	timeouts uint64
}

// New creates a table service.
func New(eng *sim.Engine, rng *simrand.RNG, cfg Config) *Service {
	def := DefaultConfig()
	if cfg.Insert.S0 == 0 {
		cfg.Insert = def.Insert
	}
	if cfg.Query.S0 == 0 {
		cfg.Query = def.Query
	}
	if cfg.Update.S0 == 0 {
		cfg.Update = def.Update
	}
	if cfg.Delete.S0 == 0 {
		cfg.Delete = def.Delete
	}
	if cfg.ServerTimeout == 0 {
		cfg.ServerTimeout = def.ServerTimeout
	}
	if cfg.IngestCapacity == 0 {
		cfg.IngestCapacity = def.IngestCapacity
	}
	if cfg.OverloadK == 0 {
		cfg.OverloadK = def.OverloadK
	}
	if cfg.ScanSecPerEntity == 0 {
		cfg.ScanSecPerEntity = def.ScanSecPerEntity
	}
	if cfg.ScanConcurrencyN0 == 0 {
		cfg.ScanConcurrencyN0 = def.ScanConcurrencyN0
	}
	if cfg.ScanCV == 0 {
		cfg.ScanCV = def.ScanCV
	}
	if cfg.ClientWriteBW == 0 {
		cfg.ClientWriteBW = def.ClientWriteBW
	}
	if cfg.ClientReadBW == 0 {
		cfg.ClientReadBW = def.ClientReadBW
	}
	r := rng.Fork("tablesvc")
	return &Service{
		cfg: cfg,
		rng: r,
		pl: reqpath.New(r, reqpath.Config{
			Service: "table",
			Faults: reqpath.FaultConfig{
				ConnFailProb:   cfg.ConnFailProb,
				ServerBusyProb: cfg.ServerBusyProb,
			},
			UploadBW:      cfg.ClientWriteBW,
			DownloadBW:    cfg.ClientReadBW,
			ServerTimeout: cfg.ServerTimeout,
		}),
		insert: station.New(cfg.Insert, r.Fork("insert")),
		query:  station.New(cfg.Query, r.Fork("query")),
		update: station.New(cfg.Update, r.Fork("update")),
		delete: station.New(cfg.Delete, r.Fork("delete")),
		tables: make(map[string]map[string]map[string]*Entity),
	}
}

// Pipeline exposes the service's request pipeline for hook installation.
func (s *Service) Pipeline() *reqpath.Pipeline { return s.pl }

// Timeouts returns the count of server-side timeout responses issued.
func (s *Service) Timeouts() uint64 { return s.timeouts }

// CreateTable makes a table (idempotent).
func (s *Service) CreateTable(name string) {
	if _, ok := s.tables[name]; !ok {
		s.tables[name] = make(map[string]map[string]*Entity)
	}
}

// Backdoor inserts an entity instantly, bypassing the timed request path.
// It is a setup helper for experiments that need a pre-populated partition
// (e.g. the ~220k-entity partition of Section 3.2).
func (s *Service) Backdoor(table string, e *Entity) {
	s.CreateTable(table)
	s.partition(table, e.PartitionKey)[e.RowKey] = e
}

// PartitionSize returns the entity count of one partition.
func (s *Service) PartitionSize(table, pk string) int {
	return len(s.tables[table][pk])
}

func (s *Service) partition(table, pk string) map[string]*Entity {
	t, ok := s.tables[table]
	if !ok {
		return nil
	}
	p, ok := t[pk]
	if !ok {
		p = make(map[string]*Entity)
		t[pk] = p
	}
	return p
}

// overloadProb computes the ingest-overload timeout model for write-class
// ops: with n concurrent clients pushing size-byte payloads at the station's
// mean rate, per-op timeout probability is OverloadK·(1−1/ρ) once offered
// load ρ exceeds 1, and zero otherwise. Shared by the blocking and flat
// request paths so both price overload identically.
func (s *Service) overloadProb(st *station.Station, size int) (prob, rho float64) {
	n := st.Attached()
	if n < 1 {
		n = 1
	}
	offered := float64(n) * float64(size) / st.MeanLatency(n).Seconds()
	rho = offered / float64(s.cfg.IngestCapacity)
	if rho <= 1 {
		return 0, rho
	}
	return s.cfg.OverloadK * (1 - 1/rho), rho
}

// overloaded applies overloadProb on the pipeline's timeout stage: the
// Bernoulli draw, the ServerTimeout burn, and the timeout reply.
func (s *Service) overloaded(c *reqpath.Ctx, st *station.Station, size int) error {
	prob, rho := s.overloadProb(st, size)
	if prob <= 0 {
		return nil
	}
	if err := c.TimeoutFault(prob, "partition ingest overloaded (rho=%.2f)", rho); err != nil {
		s.timeouts++
		return err
	}
	return nil
}

// Insert adds a new entity; inserting an existing (pk, rk) is a conflict.
func (s *Service) Insert(p *sim.Proc, table string, e *Entity) error {
	return s.pl.Do(p, "table.Insert", func(c *reqpath.Ctx) error {
		part := s.partition(table, e.PartitionKey)
		if part == nil {
			return c.Failf(storerr.CodeNotFound, "table %s", table)
		}
		if err := s.overloaded(c, s.insert, e.Size()); err != nil {
			return err
		}
		c.Station(s.insert, c.UploadCost(e.Size()))
		if _, exists := part[e.RowKey]; exists {
			return c.Failf(storerr.CodeConflict, "%s/%s exists", e.PartitionKey, e.RowKey)
		}
		part[e.RowKey] = e
		return nil
	})
}

// Get retrieves one entity by partition and row key — the fast, indexed
// query path of the paper's Query experiment.
func (s *Service) Get(p *sim.Proc, table, pk, rk string) (ent *Entity, err error) {
	err = s.pl.Do(p, "table.Query", func(c *reqpath.Ctx) error {
		part := s.partition(table, pk)
		if part == nil {
			return c.Failf(storerr.CodeNotFound, "table %s", table)
		}
		e, ok := part[rk]
		var respSize int
		if ok {
			respSize = e.Size()
		}
		c.Station(s.query, c.DownloadCost(respSize))
		if !ok {
			return c.Failf(storerr.CodeNotFound, "%s/%s", pk, rk)
		}
		ent = e
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ent, nil
}

// Update replaces an entity's properties unconditionally (no ETag check) —
// the mode the paper tested so concurrent clients can hit one entity.
func (s *Service) Update(p *sim.Proc, table string, e *Entity) error {
	return s.pl.Do(p, "table.Update", func(c *reqpath.Ctx) error {
		part := s.partition(table, e.PartitionKey)
		if part == nil {
			return c.Failf(storerr.CodeNotFound, "table %s", table)
		}
		c.Station(s.update, c.UploadCost(e.Size()))
		if _, ok := part[e.RowKey]; !ok {
			return c.Failf(storerr.CodeNotFound, "%s/%s", e.PartitionKey, e.RowKey)
		}
		part[e.RowKey] = e
		return nil
	})
}

// Delete removes one entity.
func (s *Service) Delete(p *sim.Proc, table, pk, rk string) error {
	return s.pl.Do(p, "table.Delete", func(c *reqpath.Ctx) error {
		part := s.partition(table, pk)
		if part == nil {
			return c.Failf(storerr.CodeNotFound, "table %s", table)
		}
		e, ok := part[rk]
		size := 0
		if ok {
			size = e.Size()
		}
		if err := s.overloaded(c, s.delete, size); err != nil {
			return err
		}
		c.Station(s.delete, 0)
		if !ok {
			return c.Failf(storerr.CodeNotFound, "%s/%s", pk, rk)
		}
		delete(part, rk)
		return nil
	})
}

// QueryFilter scans a partition evaluating pred on every entity — the
// non-indexed property-filter query the paper warns against (Section 6.1):
// scan latency grows with partition size and concurrent scanners, and
// requests exceeding the server timeout fail.
func (s *Service) QueryFilter(p *sim.Proc, table, pk string, pred func(*Entity) bool) (out []*Entity, err error) {
	err = s.pl.Do(p, "table.QueryFilter", func(c *reqpath.Ctx) error {
		part := s.partition(table, pk)
		if part == nil {
			return c.Failf(storerr.CodeNotFound, "table %s", table)
		}
		s.scans++
		defer func() { s.scans-- }()
		// Let simultaneously issued scans register before the cost is priced:
		// a burst of filter queries slows every member of the burst.
		c.P.Yield()
		mean := float64(len(part)) * s.cfg.ScanSecPerEntity * (1 + float64(s.scans)/s.cfg.ScanConcurrencyN0)
		lat := c.Sample(simrand.LogNormalMeanCV(mean, s.cfg.ScanCV))
		if lat > s.cfg.ServerTimeout {
			s.timeouts++
			return c.Timeout("scan of %d entities timed out", len(part))
		}
		c.P.Sleep(lat)
		for _, e := range part {
			if pred(e) {
				out = append(out, e)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
