package blobsvc

import (
	"testing"
	"time"

	"azureobs/internal/metrics"
	"azureobs/internal/netsim"
	"azureobs/internal/sim"
	"azureobs/internal/storage/storerr"
)

func TestGetRange(t *testing.T) {
	eng, svc := newSvc(Config{})
	svc.Seed("d", "b", 100*netsim.MB)
	sess := svc.NewSession(0)
	eng.Spawn("c", func(p *sim.Proc) {
		n, err := sess.GetRange(p, "d", "b", 0, 10*netsim.MB)
		if err != nil || n != 10*netsim.MB {
			t.Errorf("range = %d, %v", n, err)
		}
		// Truncation at blob end.
		n, err = sess.GetRange(p, "d", "b", 95*netsim.MB, 10*netsim.MB)
		if err != nil || n != 5*netsim.MB {
			t.Errorf("tail range = %d, %v", n, err)
		}
		// Bad ranges.
		if _, err := sess.GetRange(p, "d", "b", -1, 10); err == nil {
			t.Error("negative offset accepted")
		}
		if _, err := sess.GetRange(p, "d", "b", 200*netsim.MB, 10); err == nil {
			t.Error("offset past end accepted")
		}
		if _, err := sess.GetRange(p, "d", "nope", 0, 1); !storerr.IsCode(err, storerr.CodeNotFound) {
			t.Errorf("missing blob = %v", err)
		}
	})
	eng.Run()
}

func TestGetRangeFasterThanFullGet(t *testing.T) {
	eng, svc := newSvc(Config{})
	svc.Seed("d", "b", 100*netsim.MB)
	sess := svc.NewSession(0)
	var tRange, tFull time.Duration
	eng.Spawn("c", func(p *sim.Proc) {
		t0 := p.Now()
		if _, err := sess.GetRange(p, "d", "b", 0, 10*netsim.MB); err != nil {
			t.Error(err)
		}
		tRange = p.Now() - t0
		t0 = p.Now()
		if _, err := sess.Get(p, "d", "b"); err != nil {
			t.Error(err)
		}
		tFull = p.Now() - t0
	})
	eng.Run()
	if tRange*5 > tFull {
		t.Fatalf("10MB range %v not ≪ 100MB full get %v", tRange, tFull)
	}
}

// TestReplicationExpandsServerBandwidth reproduces the Section 6.1
// recommendation: the ~400 MB/s ceiling is per blob, so replicating a hot
// blob under k names multiplies the achievable aggregate.
func TestReplicationExpandsServerBandwidth(t *testing.T) {
	aggregate := func(replicas int) float64 {
		eng, svc := newSvc(Config{})
		for r := 0; r < replicas; r++ {
			svc.Seed("d", blobName(r), 64*netsim.MB)
		}
		const clients = 128
		var agg metrics.Summary
		for i := 0; i < clients; i++ {
			i := i
			sess := svc.NewSession(i)
			eng.Spawn("dl", func(p *sim.Proc) {
				start := p.Now()
				n, err := sess.Get(p, "d", blobName(i%replicas))
				if err != nil {
					t.Error(err)
					return
				}
				agg.Add(float64(n) / 1e6 / (p.Now() - start).Seconds())
			})
		}
		eng.Run()
		return agg.Mean() * clients
	}
	one := aggregate(1)
	four := aggregate(4)
	if one > 420 {
		t.Fatalf("single-blob aggregate %.0f exceeds the per-blob ceiling", one)
	}
	// Not a full 4x: each replica now serves 32 clients, and the calibrated
	// per-blob curve gives 208 MB/s at that concurrency (4x208 ≈ 830).
	if four < 2*one {
		t.Fatalf("4-way replication aggregate %.0f not ≫ single-blob %.0f", four, one)
	}
}

func blobName(i int) string { return string(rune('a' + i)) }
