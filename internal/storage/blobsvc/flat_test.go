package blobsvc

import (
	"testing"
	"time"

	"azureobs/internal/netsim"
	"azureobs/internal/sim"
	"azureobs/internal/storage/storerr"
)

type bObs struct {
	at   time.Duration
	code storerr.Code
	n    int64
	ok   bool
}

// TestFlatTraceMatchesBlocking runs the same blob workload — put, exists,
// get, overwrite conflict, delete, miss — once on the blocking API and once
// flat, and checks per-op completion instants, outcomes, events fired and
// the final clock match exactly.
func TestFlatTraceMatchesBlocking(t *testing.T) {
	const size = 2 * netsim.MB

	runBlocking := func() (trace []bObs, fired uint64, end time.Duration) {
		eng, svc := newSvc(Config{})
		svc.CreateContainer("data")
		sess := svc.NewSession(0)
		eng.Spawn("c", func(p *sim.Proc) {
			rec := func(n int64, ok bool, err error) {
				trace = append(trace, bObs{p.Now(), storerr.CodeOf(err), n, ok})
			}
			err := sess.Put(p, "data", "b1", size, false)
			rec(0, err == nil, err)
			ok, err := sess.Exists(p, "data", "b1")
			rec(0, ok, err)
			n, err := sess.Get(p, "data", "b1")
			rec(n, err == nil, err)
			err = sess.Put(p, "data", "b1", size, false) // BlobExists
			rec(0, err == nil, err)
			err = sess.Delete(p, "data", "b1")
			rec(0, err == nil, err)
			ok, err = sess.Exists(p, "data", "b1")
			rec(0, ok, err)
			err = sess.Delete(p, "data", "b1") // NotFound
			rec(0, err == nil, err)
			_, err = sess.Get(p, "data", "b1") // NotFound
			rec(0, err == nil, err)
		})
		eng.Run()
		return trace, eng.EventsFired(), eng.Now()
	}

	runFlat := func() (trace []bObs, fired uint64, end time.Duration) {
		eng, svc := newSvc(Config{})
		svc.CreateContainer("data")
		sess := svc.NewSession(0)
		var a sim.Actor
		a.Bind(eng, "c")
		var steps []func()
		step := 0
		next := func() {
			step++
			if step < len(steps) {
				steps[step]()
			} else {
				a.Finish()
			}
		}
		rec := func(n int64, ok bool, err error) {
			trace = append(trace, bObs{a.Now(), storerr.CodeOf(err), n, ok})
		}
		sizeDone := func(n int64, err error) { rec(0, err == nil, err); next() }
		getDone := func(n int64, err error) { rec(n, err == nil, err); next() }
		getMissDone := func(n int64, err error) { rec(0, err == nil, err); next() }
		okDone := func(ok bool, err error) { rec(0, ok, err); next() }
		errDone := func(err error) { rec(0, err == nil, err); next() }
		steps = []func(){
			func() { sess.PutFlat(&a, "data", "b1", size, false, sizeDone) },
			func() { sess.ExistsFlat(&a, "data", "b1", okDone) },
			func() { sess.GetFlat(&a, "data", "b1", getDone) },
			func() { sess.PutFlat(&a, "data", "b1", size, false, sizeDone) },
			func() { sess.DeleteFlat(&a, "data", "b1", errDone) },
			func() { sess.ExistsFlat(&a, "data", "b1", okDone) },
			func() { sess.DeleteFlat(&a, "data", "b1", errDone) },
			func() { sess.GetFlat(&a, "data", "b1", getMissDone) },
		}
		a.Go(steps[0])
		eng.Run()
		return trace, eng.EventsFired(), eng.Now()
	}

	bt, bf, be := runBlocking()
	ft, ff, fe := runFlat()
	if bf != ff || be != fe {
		t.Fatalf("blocking (fired=%d end=%v) != flat (fired=%d end=%v)", bf, be, ff, fe)
	}
	if len(bt) != len(ft) {
		t.Fatalf("trace lengths: blocking %d, flat %d", len(bt), len(ft))
	}
	for i := range bt {
		if bt[i] != ft[i] {
			t.Fatalf("op %d: blocking %+v != flat %+v", i, bt[i], ft[i])
		}
	}
	// Pin the interesting outcomes so the workload keeps covering them.
	if bt[2].n != size {
		t.Fatalf("get size = %d, want %d", bt[2].n, size)
	}
	if bt[3].code != storerr.CodeBlobExists {
		t.Fatalf("overwrite code = %q, want BlobExists", bt[3].code)
	}
	if bt[5].ok {
		t.Fatal("exists after delete = true")
	}
	if bt[6].code != storerr.CodeNotFound || bt[7].code != storerr.CodeNotFound {
		t.Fatalf("post-delete codes = %q/%q, want NotFound", bt[6].code, bt[7].code)
	}
}
