package blobsvc

import (
	"azureobs/internal/sim"
	"azureobs/internal/storage/reqpath"
	"azureobs/internal/storage/storerr"
)

// flatReq is a session's flat request state: the blob Get/Put bodies
// compiled into continuations driven by the caller's actor. One request may
// be in flight per session at a time — exactly the closed-loop shape the
// paper's clients have — so the struct and its two cached continuations are
// allocated once and reused for every request the session ever issues.
//
// Stage order replicates Get/Put through the goroutine pipeline verbatim:
// admission (outage → conn-fail → request-latency sleep → server-busy),
// lookup, read-fault, fabric transfer, integrity/commit, hook delivery, then
// the caller's done callback at the instant Get/Put would have returned.
type flatReq struct {
	sess *Session
	a    *sim.Actor
	c    reqpath.FlatCtx

	get             bool
	container, name string
	size            int64
	overwrite       bool
	b               *Blob
	done            func(size int64, err error)

	afterAdmit func() // cached: runs after the request-latency sleep
	afterXfer  func() // cached: runs when the fabric transfer completes
}

func (sess *Session) flatReq() *flatReq {
	if sess.flat == nil {
		r := &flatReq{sess: sess}
		r.afterAdmit = r.admitted
		r.afterXfer = r.transferred
		sess.flat = r
	}
	return sess.flat
}

// GetFlat is the flat-actor form of Get: a's continuations drive the request
// and done receives the blob size (0 on error) at the instant Get would have
// returned. One flat request may be in flight per session.
func (sess *Session) GetFlat(a *sim.Actor, container, name string, done func(size int64, err error)) {
	sess.flatReq().begin(a, "blob.Get", true, container, name, 0, false, done)
}

// PutFlat is the flat-actor form of Put; done receives the upload size and
// the request's outcome.
func (sess *Session) PutFlat(a *sim.Actor, container, name string, size int64, overwrite bool, done func(size int64, err error)) {
	sess.flatReq().begin(a, "blob.Put", false, container, name, size, overwrite, done)
}

func (r *flatReq) begin(a *sim.Actor, op string, get bool, container, name string, size int64, overwrite bool, done func(int64, error)) {
	if r.a != nil {
		panic("blobsvc: session already has a flat request in flight")
	}
	r.a, r.get = a, get
	r.container, r.name, r.size, r.overwrite, r.done = container, name, size, overwrite, done
	r.c.Begin(r.sess.pl, op, a.Now())
	sleep, hasSleep, err := r.c.AdmitPre()
	if err != nil {
		r.finish(err)
		return
	}
	if hasSleep {
		a.Sleep(sleep, r.afterAdmit)
		return
	}
	r.admitted()
}

func (r *flatReq) admitted() {
	if err := r.c.AdmitPost(); err != nil {
		r.finish(err)
		return
	}
	sess, svc := r.sess, r.sess.svc
	if r.get {
		b, ok := svc.containers[r.container][r.name]
		if !ok {
			r.finish(r.c.Failf(storerr.CodeNotFound, "%s/%s", r.container, r.name))
			return
		}
		r.b, r.size = b, b.Size
		if err := r.c.ReadFault(); err != nil {
			r.finish(err)
			return
		}
		svc.net.TransferFlat(r.a, b.Size, r.afterXfer, b.egress, sess.down)
		return
	}
	cont, ok := svc.containers[r.container]
	if !ok {
		r.finish(r.c.Failf(storerr.CodeNotFound, "container %s", r.container))
		return
	}
	if _, exists := cont[r.name]; exists && !r.overwrite {
		r.finish(r.c.Failf(storerr.CodeBlobExists, "%s/%s", r.container, r.name))
		return
	}
	svc.net.TransferFlat(r.a, r.size, r.afterXfer, sess.up, svc.ingress)
}

func (r *flatReq) transferred() {
	svc := r.sess.svc
	if r.get {
		svc.downloads++
		r.finish(r.c.CorruptRead("%s/%s checksum mismatch", r.b.Container, r.b.Name))
		return
	}
	svc.containers[r.container][r.name] = svc.newBlob(r.container, r.name, r.size, r.a.Now())
	svc.uploads++
	r.finish(nil)
}

func (r *flatReq) finish(err error) {
	size := r.size
	if r.get && err != nil {
		size = 0
	}
	done := r.done
	r.c.Finish(r.a.Now(), err)
	// Clear the in-flight state before the callback so the continuation can
	// issue the session's next request immediately.
	r.a, r.done, r.b = nil, nil, nil
	done(size, err)
}
