package blobsvc

import (
	"azureobs/internal/sim"
	"azureobs/internal/storage/reqpath"
	"azureobs/internal/storage/storerr"
)

// bop selects which blob operation a flat request runs.
type bop int

const (
	bGet bop = iota
	bPut
	bExists
	bDelete
)

// reqFlat is a session's flat request state: the blob op bodies compiled
// into continuations driven by the caller's actor. One request may be in
// flight per session at a time — exactly the closed-loop shape the paper's
// clients have — so the struct and its two cached continuations are
// allocated once and reused for every request the session ever issues.
//
// Stage order replicates the blocking ops through the goroutine pipeline
// verbatim: admission (outage → conn-fail → request-latency sleep →
// server-busy), lookup, read-fault, fabric transfer, integrity/commit, hook
// delivery, then the caller's done callback at the instant the blocking
// form would have returned. Exists and Delete have no transfer stage, as
// their blocking twins do not.
type reqFlat struct {
	sess *Session
	a    *sim.Actor
	c    reqpath.CtxFlat

	op              bop
	container, name string
	size            int64
	overwrite       bool
	b               *Blob
	done            func(size int64, err error) // get/put completion
	okDone          func(ok bool, err error)    // exists completion
	errDone         func(err error)             // delete completion

	afterAdmit func() // cached: runs after the request-latency sleep
	afterXfer  func() // cached: runs when the fabric transfer completes
}

func (sess *Session) flatReq() *reqFlat {
	if sess.flat == nil {
		r := &reqFlat{sess: sess}
		r.afterAdmit = r.admitted
		r.afterXfer = r.transferred
		sess.flat = r
	}
	return sess.flat
}

// GetFlat is the flat-actor form of Get: a's continuations drive the request
// and done receives the blob size (0 on error) at the instant Get would have
// returned. One flat request may be in flight per session.
func (sess *Session) GetFlat(a *sim.Actor, container, name string, done func(size int64, err error)) {
	r := sess.flatReq()
	r.done = done
	r.begin(a, "blob.Get", bGet, container, name, 0, false)
}

// PutFlat is the flat-actor form of Put; done receives the upload size and
// the request's outcome.
func (sess *Session) PutFlat(a *sim.Actor, container, name string, size int64, overwrite bool, done func(size int64, err error)) {
	r := sess.flatReq()
	r.done = done
	r.begin(a, "blob.Put", bPut, container, name, size, overwrite)
}

// ExistsFlat is the flat-actor form of Exists; done receives the existence
// check's outcome at the instant Exists would have returned.
func (sess *Session) ExistsFlat(a *sim.Actor, container, name string, done func(ok bool, err error)) {
	r := sess.flatReq()
	r.okDone = done
	r.begin(a, "blob.Exists", bExists, container, name, 0, false)
}

// DeleteFlat is the flat-actor form of Delete.
func (sess *Session) DeleteFlat(a *sim.Actor, container, name string, done func(err error)) {
	r := sess.flatReq()
	r.errDone = done
	r.begin(a, "blob.Delete", bDelete, container, name, 0, false)
}

func (r *reqFlat) begin(a *sim.Actor, op string, kind bop, container, name string, size int64, overwrite bool) {
	if r.a != nil {
		panic("blobsvc: session already has a flat request in flight")
	}
	r.a, r.op = a, kind
	r.container, r.name, r.size, r.overwrite = container, name, size, overwrite
	r.c.Begin(r.sess.pl, op, a.Now())
	sleep, hasSleep, err := r.c.AdmitPre()
	if err != nil {
		r.finish(err)
		return
	}
	if hasSleep {
		a.Sleep(sleep, r.afterAdmit)
		return
	}
	r.admitted()
}

func (r *reqFlat) admitted() {
	if err := r.c.AdmitPost(); err != nil {
		r.finish(err)
		return
	}
	sess, svc := r.sess, r.sess.svc
	switch r.op {
	case bGet:
		b, ok := svc.containers[r.container][r.name]
		if !ok {
			r.finish(r.c.Failf(storerr.CodeNotFound, "%s/%s", r.container, r.name))
			return
		}
		r.b, r.size = b, b.Size
		if err := r.c.ReadFault(); err != nil {
			r.finish(err)
			return
		}
		svc.net.TransferFlat(r.a, b.Size, r.afterXfer, b.egress, sess.down)
	case bPut:
		cont, ok := svc.containers[r.container]
		if !ok {
			r.finish(r.c.Failf(storerr.CodeNotFound, "container %s", r.container))
			return
		}
		if _, exists := cont[r.name]; exists && !r.overwrite {
			r.finish(r.c.Failf(storerr.CodeBlobExists, "%s/%s", r.container, r.name))
			return
		}
		svc.net.TransferFlat(r.a, r.size, r.afterXfer, sess.up, svc.ingress)
	case bExists:
		// The blocking body only inspects the map — no station, no transfer.
		if _, ok := svc.containers[r.container][r.name]; ok {
			r.size = 1 // carries the boolean through finish
		}
		r.finish(nil)
	case bDelete:
		cont := svc.containers[r.container]
		if _, ok := cont[r.name]; !ok {
			r.finish(r.c.Failf(storerr.CodeNotFound, "%s/%s", r.container, r.name))
			return
		}
		delete(cont, r.name)
		r.finish(nil)
	}
}

func (r *reqFlat) transferred() {
	svc := r.sess.svc
	if r.op == bGet {
		svc.downloads++
		r.finish(r.c.CorruptRead("%s/%s checksum mismatch", r.b.Container, r.b.Name))
		return
	}
	svc.containers[r.container][r.name] = svc.newBlob(r.container, r.name, r.size, r.a.Now())
	svc.uploads++
	r.finish(nil)
}

func (r *reqFlat) finish(err error) {
	op, size := r.op, r.size
	if op == bGet && err != nil {
		size = 0
	}
	done, okDone, errDone := r.done, r.okDone, r.errDone
	r.c.Finish(r.a.Now(), err)
	// Clear the in-flight state before the callback so the continuation can
	// issue the session's next request immediately.
	r.a, r.b = nil, nil
	r.done, r.okDone, r.errDone = nil, nil, nil
	switch op {
	case bExists:
		okDone(size != 0 && err == nil, err)
	case bDelete:
		errDone(err)
	default:
		done(size, err)
	}
}
