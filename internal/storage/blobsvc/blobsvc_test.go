package blobsvc

import (
	"math"
	"testing"
	"time"

	"azureobs/internal/metrics"
	"azureobs/internal/netsim"
	"azureobs/internal/sim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/storerr"
)

func newSvc(cfg Config) (*sim.Engine, *Service) {
	eng := sim.NewEngine()
	net := netsim.NewFabric(eng)
	return eng, New(eng, net, simrand.New(1), cfg)
}

func TestPutGetRoundtrip(t *testing.T) {
	eng, svc := newSvc(Config{})
	svc.CreateContainer("data")
	sess := svc.NewSession(0)
	eng.Spawn("c", func(p *sim.Proc) {
		if err := sess.Put(p, "data", "b1", 10*netsim.MB, false); err != nil {
			t.Errorf("put: %v", err)
			return
		}
		n, err := sess.Get(p, "data", "b1")
		if err != nil {
			t.Errorf("get: %v", err)
			return
		}
		if n != 10*netsim.MB {
			t.Errorf("size = %d", n)
		}
	})
	eng.Run()
	if svc.Uploads() != 1 || svc.Downloads() != 1 {
		t.Fatalf("uploads/downloads = %d/%d", svc.Uploads(), svc.Downloads())
	}
}

func TestGetMissing(t *testing.T) {
	eng, svc := newSvc(Config{})
	svc.CreateContainer("data")
	sess := svc.NewSession(0)
	eng.Spawn("c", func(p *sim.Proc) {
		_, err := sess.Get(p, "data", "nope")
		if !storerr.IsCode(err, storerr.CodeNotFound) {
			t.Errorf("get missing = %v, want NotFound", err)
		}
	})
	eng.Run()
}

func TestPutConflict(t *testing.T) {
	eng, svc := newSvc(Config{})
	svc.CreateContainer("data")
	sess := svc.NewSession(0)
	eng.Spawn("c", func(p *sim.Proc) {
		if err := sess.Put(p, "data", "b", 1*netsim.MB, false); err != nil {
			t.Errorf("first put: %v", err)
		}
		err := sess.Put(p, "data", "b", 1*netsim.MB, false)
		if !storerr.IsCode(err, storerr.CodeBlobExists) {
			t.Errorf("second put = %v, want BlobExists", err)
		}
		if err := sess.Put(p, "data", "b", 2*netsim.MB, true); err != nil {
			t.Errorf("overwrite put: %v", err)
		}
		b, _ := svc.Lookup("data", "b")
		if b.Size != 2*netsim.MB {
			t.Errorf("overwritten size = %d", b.Size)
		}
	})
	eng.Run()
}

func TestExistsAndDelete(t *testing.T) {
	eng, svc := newSvc(Config{})
	svc.CreateContainer("data")
	sess := svc.NewSession(0)
	eng.Spawn("c", func(p *sim.Proc) {
		ok, _ := sess.Exists(p, "data", "b")
		if ok {
			t.Error("exists before put")
		}
		_ = sess.Put(p, "data", "b", 1*netsim.MB, false)
		ok, _ = sess.Exists(p, "data", "b")
		if !ok {
			t.Error("missing after put")
		}
		if err := sess.Delete(p, "data", "b"); err != nil {
			t.Errorf("delete: %v", err)
		}
		if err := sess.Delete(p, "data", "b"); !storerr.IsCode(err, storerr.CodeNotFound) {
			t.Errorf("double delete = %v", err)
		}
	})
	eng.Run()
}

func TestPutToMissingContainer(t *testing.T) {
	eng, svc := newSvc(Config{})
	sess := svc.NewSession(0)
	eng.Spawn("c", func(p *sim.Proc) {
		err := sess.Put(p, "ghost", "b", 1, false)
		if !storerr.IsCode(err, storerr.CodeNotFound) {
			t.Errorf("put to missing container = %v", err)
		}
	})
	eng.Run()
}

// downloadBandwidth runs the Fig. 1 protocol at a given concurrency and
// returns the mean per-client bandwidth in MB/s.
func downloadBandwidth(t *testing.T, clients int, blobMB int64) float64 {
	t.Helper()
	eng, svc := newSvc(Config{})
	svc.CreateContainer("data")
	svc.Seed("data", "big", blobMB*netsim.MB)
	var agg metrics.Summary
	for i := 0; i < clients; i++ {
		sess := svc.NewSession(i)
		eng.Spawn("dl", func(p *sim.Proc) {
			start := p.Now()
			n, err := sess.Get(p, "data", "big")
			if err != nil {
				t.Errorf("get: %v", err)
				return
			}
			agg.Add(float64(n) / 1e6 / (p.Now() - start).Seconds())
		})
	}
	eng.Run()
	return agg.Mean()
}

func TestFig1DownloadCurve(t *testing.T) {
	// Paper anchors: ~13 MB/s for 1-8 clients, ~half that at 32, ~3.07 at
	// 128 (≈393 MB/s aggregate peak), lower per-client at 192.
	single := downloadBandwidth(t, 1, 256)
	if math.Abs(single-13) > 1 {
		t.Fatalf("single-client download = %.2f MB/s, want ~13", single)
	}
	at8 := downloadBandwidth(t, 8, 256)
	if math.Abs(at8-13) > 1.5 {
		t.Fatalf("8-client download = %.2f MB/s, want ~13 (NIC-bound)", at8)
	}
	at32 := downloadBandwidth(t, 32, 128)
	if math.Abs(at32-6.5) > 1 {
		t.Fatalf("32-client download = %.2f MB/s, want ~6.5 (half of single)", at32)
	}
	at128 := downloadBandwidth(t, 128, 64)
	if math.Abs(at128*128-393) > 25 {
		t.Fatalf("128-client aggregate = %.1f MB/s, want ~393", at128*128)
	}
	at192 := downloadBandwidth(t, 192, 64)
	if at192*192 > at128*128 {
		t.Fatalf("aggregate at 192 (%.1f) exceeds peak at 128 (%.1f)", at192*192, at128*128)
	}
	// Monotone per-client decay.
	if !(single >= at32 && at32 > at128 && at128 > at192) {
		t.Fatalf("per-client bandwidth not decaying: %v %v %v %v", single, at32, at128, at192)
	}
}

func uploadBandwidth(t *testing.T, clients int, blobMB int64) float64 {
	t.Helper()
	eng, svc := newSvc(Config{})
	svc.CreateContainer("up")
	var agg metrics.Summary
	for i := 0; i < clients; i++ {
		i := i
		sess := svc.NewSession(i)
		eng.Spawn("ul", func(p *sim.Proc) {
			start := p.Now()
			name := "blob-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i%10))
			if err := sess.Put(p, "up", name+"-"+time.Duration(i).String(), blobMB*netsim.MB, true); err != nil {
				t.Errorf("put: %v", err)
				return
			}
			agg.Add(float64(blobMB) / (p.Now() - start).Seconds())
		})
	}
	eng.Run()
	return agg.Mean()
}

func TestFig1UploadCurve(t *testing.T) {
	// Paper anchors: ~half of download for small n, 1.25 MB/s at 64
	// clients, 0.65 at 192 (aggregate max 124.25 MB/s at 192).
	single := uploadBandwidth(t, 1, 64)
	if math.Abs(single-6.5) > 0.7 {
		t.Fatalf("single-client upload = %.2f MB/s, want ~6.5", single)
	}
	at64 := uploadBandwidth(t, 64, 16)
	if math.Abs(at64-1.25) > 0.3 {
		t.Fatalf("64-client upload = %.2f MB/s, want ~1.25", at64)
	}
	at192 := uploadBandwidth(t, 192, 8)
	if math.Abs(at192-0.65) > 0.15 {
		t.Fatalf("192-client upload = %.2f MB/s, want ~0.65", at192)
	}
	if math.Abs(at192*192-124.25) > 15 {
		t.Fatalf("192-client aggregate = %.1f, want ~124", at192*192)
	}
}

func TestFaultInjection(t *testing.T) {
	eng, svc := newSvc(Config{CorruptReadProb: 1})
	svc.CreateContainer("d")
	svc.Seed("d", "b", 1)
	sess := svc.NewSession(0)
	eng.Spawn("c", func(p *sim.Proc) {
		_, err := sess.Get(p, "d", "b")
		if !storerr.IsCode(err, storerr.CodeCorruptRead) {
			t.Errorf("get with corrupt injection = %v", err)
		}
	})
	eng.Run()

	eng2, svc2 := newSvc(Config{ConnFailProb: 1})
	svc2.CreateContainer("d")
	sess2 := svc2.NewSession(0)
	eng2.Spawn("c", func(p *sim.Proc) {
		err := sess2.Put(p, "d", "b", 1, false)
		if !storerr.IsCode(err, storerr.CodeConnection) {
			t.Errorf("put with conn failure = %v", err)
		}
	})
	eng2.Run()
}

func TestDeterministicDownloads(t *testing.T) {
	run := func() float64 { return downloadBandwidth(t, 16, 64) }
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}
