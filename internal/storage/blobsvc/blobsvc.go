// Package blobsvc simulates the Windows Azure blob storage service as
// measured in Section 3.1 of the paper: a triple-replicated object store
// whose aggregate download bandwidth saturates near 400 MB/s against a
// single blob (three replicas of a ~130 MB/s server class), whose upload
// path tops out near 125 MB/s (one ingest stream plus synchronous
// replication write amplification), and whose per-client throughput is
// bounded by a ~13 MB/s (100 Mbit-class) per-connection service cap for
// small instances.
//
// The service-side aggregate curves are expressed as netsim capacity
// profiles calibrated to the published Fig. 1 data points; the per-client
// curve then emerges from max-min fair sharing between the client access
// link and the service trunk.
package blobsvc

import (
	"time"

	"azureobs/internal/netsim"
	"azureobs/internal/sim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/reqpath"
	"azureobs/internal/storage/storerr"
)

// Config parameterises the service. Zero fields take calibrated defaults.
type Config struct {
	// DownloadProfile is the aggregate egress capacity vs concurrent
	// downloads (Fig. 1 calibration).
	DownloadProfile []netsim.ProfilePoint
	// UploadProfile is the aggregate ingest capacity vs concurrent uploads.
	UploadProfile []netsim.ProfilePoint
	// ClientDownBW is the per-connection download cap (the ~100 Mbit/s
	// small-instance limitation of Section 6.1).
	ClientDownBW netsim.Bandwidth
	// ClientUpBW is the per-connection upload cap (~half of download;
	// Fig. 1 upload sits at about half the download bandwidth).
	ClientUpBW netsim.Bandwidth
	// RequestLatency is the per-request overhead before bytes flow.
	RequestLatency simrand.Dist
	// ReplicationFactor is informational (the profiles already embody it).
	ReplicationFactor int

	// Fault injection (all default 0; the ModisAzure campaign raises them).
	CorruptReadProb float64 // client-side integrity failure after download
	ReadFailProb    float64 // blob read fails server-side
	ConnFailProb    float64 // transport failure before the request lands
	ServerBusyProb  float64 // throttle response
}

// DefaultConfig returns the Fig. 1 calibration.
func DefaultConfig() Config {
	return Config{
		// Aggregate download MB/s at n concurrent clients. Paper anchors:
		// NIC-bound through 8 clients (≤13 MB/s each), ~half per-client at
		// 32 (≈6.5 → 208 aggregate), peak 393.4 at 128, slightly lower at
		// 192 ("maximum ... achieved by using 128 clients").
		DownloadProfile: []netsim.ProfilePoint{
			{N: 1, Capacity: 50 * netsim.MBps},
			{N: 8, Capacity: 110 * netsim.MBps},
			{N: 16, Capacity: 152 * netsim.MBps},
			{N: 32, Capacity: 208 * netsim.MBps},
			{N: 64, Capacity: 320 * netsim.MBps},
			{N: 128, Capacity: 393 * netsim.MBps},
			{N: 192, Capacity: 388 * netsim.MBps},
		},
		// Aggregate upload MB/s. Paper anchors: single client ~6.5 (half of
		// download), 1.25 per client at 64 (=80 aggregate), 0.65 at 192
		// (=124.8 aggregate, the observed 124.25 MB/s maximum).
		UploadProfile: []netsim.ProfilePoint{
			{N: 1, Capacity: 30 * netsim.MBps},
			{N: 8, Capacity: 52 * netsim.MBps},
			{N: 16, Capacity: 80 * netsim.MBps},
			{N: 64, Capacity: 80 * netsim.MBps},
			{N: 128, Capacity: 115 * netsim.MBps},
			{N: 192, Capacity: 125 * netsim.MBps},
		},
		ClientDownBW:      13 * netsim.MBps,
		ClientUpBW:        6.5 * netsim.MBps,
		RequestLatency:    simrand.LogNormalMeanCV(0.015, 0.4),
		ReplicationFactor: 3,
	}
}

// Blob is stored metadata; payloads are sizes, not bytes. Each blob carries
// its own egress link with the calibrated concurrency profile: the paper's
// ~400 MB/s ceiling is per *blob* (three replicas of a ~130 MB/s server
// class serving one object), which is why its Section 6.1 recommends
// replicating hot blobs under several names to expand server-side
// bandwidth.
type Blob struct {
	Container string
	Name      string
	Size      int64
	Created   time.Duration

	egress *netsim.Link
}

// Service is one blob storage account endpoint.
type Service struct {
	cfg Config
	eng *sim.Engine
	net *netsim.Fabric
	rng *simrand.RNG
	pl  *reqpath.Pipeline

	downloadProfile func(int) netsim.Bandwidth
	ingress         *netsim.Link

	containers map[string]map[string]*Blob

	downloads, uploads uint64
}

// New creates a blob service on the network fabric.
func New(eng *sim.Engine, net *netsim.Fabric, rng *simrand.RNG, cfg Config) *Service {
	def := DefaultConfig()
	if cfg.DownloadProfile == nil {
		cfg.DownloadProfile = def.DownloadProfile
	}
	if cfg.UploadProfile == nil {
		cfg.UploadProfile = def.UploadProfile
	}
	if cfg.ClientDownBW == 0 {
		cfg.ClientDownBW = def.ClientDownBW
	}
	if cfg.ClientUpBW == 0 {
		cfg.ClientUpBW = def.ClientUpBW
	}
	if cfg.RequestLatency == nil {
		cfg.RequestLatency = def.RequestLatency
	}
	if cfg.ReplicationFactor == 0 {
		cfg.ReplicationFactor = def.ReplicationFactor
	}
	s := &Service{
		cfg:        cfg,
		eng:        eng,
		net:        net,
		rng:        rng.Fork("blobsvc"),
		containers: make(map[string]map[string]*Blob),
	}
	s.pl = reqpath.New(s.rng, reqpath.Config{
		Service: "blob",
		Faults: reqpath.FaultConfig{
			ConnFailProb:    cfg.ConnFailProb,
			ServerBusyProb:  cfg.ServerBusyProb,
			ReadFailProb:    cfg.ReadFailProb,
			CorruptReadProb: cfg.CorruptReadProb,
		},
		Latency: cfg.RequestLatency,
		Net:     net,
	})
	s.downloadProfile = netsim.CapacityProfile(cfg.DownloadProfile...)
	s.ingress = net.NewLink("blob-ingress", 125*netsim.MBps)
	s.ingress.SetCapacityFn(netsim.CapacityProfile(cfg.UploadProfile...))
	return s
}

// newBlob creates blob metadata with its private egress link.
func (s *Service) newBlob(container, name string, size int64, created time.Duration) *Blob {
	b := &Blob{Container: container, Name: name, Size: size, Created: created}
	b.egress = s.net.NewLink("blob-egress/"+container+"/"+name, 400*netsim.MBps)
	b.egress.SetCapacityFn(s.downloadProfile)
	return b
}

// Seed stores a blob instantly, bypassing the timed upload path — a setup
// helper for experiments that stage data before measuring.
func (s *Service) Seed(container, name string, size int64) *Blob {
	s.CreateContainer(container)
	b := s.newBlob(container, name, size, s.eng.Now())
	s.containers[container][name] = b
	return b
}

// Apply makes the stored copy of a blob match a replicated payload: a
// no-op when the blob exists at the given size, otherwise an untimed
// seed/reseed. This is the geo-replication apply path (internal/geo): the
// long-haul transfer is timed on the trunk link before Apply runs, so the
// local store mutation itself is instantaneous — matching how the
// intra-datacenter replicas behind the capacity profiles are modeled.
func (s *Service) Apply(container, name string, size int64) *Blob {
	if b, ok := s.Lookup(container, name); ok && b.Size == size {
		return b
	}
	return s.Seed(container, name, size)
}

// Pipeline exposes the service's request pipeline so callers (the azure SDK)
// can install per-request hooks; sessions share its hook set.
func (s *Service) Pipeline() *reqpath.Pipeline { return s.pl }

// Downloads returns the number of completed downloads.
func (s *Service) Downloads() uint64 { return s.downloads }

// Uploads returns the number of completed uploads.
func (s *Service) Uploads() uint64 { return s.uploads }

// CreateContainer makes a container; creating an existing container is a
// no-op (Azure semantics for CreateIfNotExist).
func (s *Service) CreateContainer(name string) {
	if _, ok := s.containers[name]; !ok {
		s.containers[name] = make(map[string]*Blob)
	}
}

// Lookup returns blob metadata without a timed request (test/verification
// helper).
func (s *Service) Lookup(container, name string) (*Blob, bool) {
	b, ok := s.containers[container][name]
	return b, ok
}

// BlobCount returns the number of blobs in a container.
func (s *Service) BlobCount(container string) int { return len(s.containers[container]) }

// Session is one client connection context. Each concurrent client must use
// its own session: the session's private access links are what impose the
// per-client bandwidth caps, and its private pipeline carries independent
// fault/latency streams.
type Session struct {
	svc  *Service
	pl   *reqpath.Pipeline
	down *netsim.Link
	up   *netsim.Link

	// flat is the session's flat request state, created on the first
	// *Flat call and reused for every later flat request on this session.
	flat *reqFlat
}

// NewSession opens a client session. The id decorrelates the session's
// random streams.
func (s *Service) NewSession(id int) *Session {
	return &Session{
		svc:  s,
		pl:   s.pl.ForkN("session", id),
		down: s.net.NewLink("blob-client-down", s.cfg.ClientDownBW),
		up:   s.net.NewLink("blob-client-up", s.cfg.ClientUpBW),
	}
}

// download moves a blob payload through the service egress and session
// access link, then applies the integrity stage — the shared tail of Get and
// GetRange.
func (sess *Session) download(c *reqpath.Ctx, b *Blob, size int64) error {
	if err := c.ReadFault(); err != nil {
		return err
	}
	c.Transfer(size, b.egress, sess.down)
	sess.svc.downloads++
	return c.CorruptRead("%s/%s checksum mismatch", b.Container, b.Name)
}

// Get downloads a blob in full, blocking for the transfer, and returns its
// size.
func (sess *Session) Get(p *sim.Proc, container, name string) (size int64, err error) {
	err = sess.pl.Do(p, "blob.Get", func(c *reqpath.Ctx) error {
		b, ok := sess.svc.containers[container][name]
		if !ok {
			return c.Failf(storerr.CodeNotFound, "%s/%s", container, name)
		}
		size = b.Size
		return sess.download(c, b, b.Size)
	})
	if err != nil {
		size = 0
	}
	return size, err
}

// GetRange downloads length bytes starting at offset, returning the bytes
// actually transferred (truncated at the blob end). Range reads against the
// 2009 API are how clients parallelise a large download across connections.
func (sess *Session) GetRange(p *sim.Proc, container, name string, offset, length int64) (int64, error) {
	err := sess.pl.Do(p, "blob.GetRange", func(c *reqpath.Ctx) error {
		b, ok := sess.svc.containers[container][name]
		if !ok {
			return c.Failf(storerr.CodeNotFound, "%s/%s", container, name)
		}
		if offset < 0 || offset >= b.Size || length <= 0 {
			return c.Failf(storerr.CodeInternal, "bad range [%d,+%d) of %d", offset, length, b.Size)
		}
		if offset+length > b.Size {
			length = b.Size - offset
		}
		return sess.download(c, b, length)
	})
	if err != nil {
		return 0, err
	}
	return length, nil
}

// Put uploads a new blob of the given size. With overwrite false, an
// existing blob yields CodeBlobExists — the check happens before bytes move,
// which is how ModisAzure used it to elide duplicate work (Table 2's "Blob
// already exists" entries).
func (sess *Session) Put(p *sim.Proc, container, name string, size int64, overwrite bool) error {
	return sess.pl.Do(p, "blob.Put", func(c *reqpath.Ctx) error {
		cont, ok := sess.svc.containers[container]
		if !ok {
			return c.Failf(storerr.CodeNotFound, "container %s", container)
		}
		if _, exists := cont[name]; exists && !overwrite {
			return c.Failf(storerr.CodeBlobExists, "%s/%s", container, name)
		}
		c.Transfer(size, sess.up, sess.svc.ingress)
		cont[name] = sess.svc.newBlob(container, name, size, c.P.Now())
		sess.svc.uploads++
		return nil
	})
}

// Exists checks blob existence with a lightweight request.
func (sess *Session) Exists(p *sim.Proc, container, name string) (ok bool, err error) {
	err = sess.pl.Do(p, "blob.Exists", func(*reqpath.Ctx) error {
		_, ok = sess.svc.containers[container][name]
		return nil
	})
	return ok && err == nil, err
}

// Delete removes a blob.
func (sess *Session) Delete(p *sim.Proc, container, name string) error {
	return sess.pl.Do(p, "blob.Delete", func(c *reqpath.Ctx) error {
		cont := sess.svc.containers[container]
		if _, ok := cont[name]; !ok {
			return c.Failf(storerr.CodeNotFound, "%s/%s", container, name)
		}
		delete(cont, name)
		return nil
	})
}
