package storerr

import "testing"

// TestClassCoversEveryCode pins that every defined code has a
// classification with a real HTTP status and wire string — the facade
// serves blind off this table, so a hole here is a hole in the REST
// surface.
func TestClassCoversEveryCode(t *testing.T) {
	want := map[Code]Classification{
		CodeTimeout:     {KindRetryable, 500, "OperationTimedOut"},
		CodeServerBusy:  {KindRetryable, 503, "ServerBusy"},
		CodeBlobExists:  {KindConflict, 409, "BlobAlreadyExists"},
		CodeNotFound:    {KindNotFound, 404, "ResourceNotFound"},
		CodeConflict:    {KindConflict, 409, "Conflict"},
		CodeCorruptRead: {KindRetryable, 500, "CorruptRead"},
		CodeConnection:  {KindRetryable, 500, "ConnectionFailure"},
		CodeInternal:    {KindRetryable, 500, "InternalClientError"},
	}
	codes := Codes()
	if len(codes) != len(want) {
		t.Fatalf("Codes() lists %d codes, classification table pins %d", len(codes), len(want))
	}
	for _, c := range codes {
		cl := Class(c)
		w, ok := want[c]
		if !ok {
			t.Errorf("code %q missing from the pinned table", c)
			continue
		}
		if cl != w {
			t.Errorf("Class(%q) = %+v, want %+v", c, cl, w)
		}
		if cl.Status < 400 || cl.Status > 599 {
			t.Errorf("Class(%q).Status = %d, not an error status", c, cl.Status)
		}
		if cl.Wire == "" {
			t.Errorf("Class(%q).Wire is empty", c)
		}
	}
}

// TestClassDrivesRetryable pins that Retryable/IsRetryable are views of
// the Class table, including the retry-by-default rule for unknown codes
// that FuzzRetryClassify (internal/azure) depends on.
func TestClassDrivesRetryable(t *testing.T) {
	for _, c := range Codes() {
		err := New(c, "op", "")
		if got, want := err.Retryable(), Class(c).Kind == KindRetryable; got != want {
			t.Errorf("(%q).Retryable() = %v, Class kind %v", c, got, Class(c).Kind)
		}
		if got, want := IsRetryable(err), err.Retryable(); got != want {
			t.Errorf("IsRetryable(%q) = %v, Retryable() = %v", c, got, want)
		}
	}
	unknown := Class(Code("NoSuchCode"))
	if unknown.Kind != KindRetryable || unknown.Status != 500 || unknown.Wire != "NoSuchCode" {
		t.Errorf("unknown code classification = %+v, want retryable/500/pass-through", unknown)
	}
	if !New("NoSuchCode", "op", "").Retryable() {
		t.Error("unknown codes must stay retryable (pinned by FuzzRetryClassify)")
	}
}

func TestKindString(t *testing.T) {
	for k, s := range map[Kind]string{
		KindRetryable: "retryable", KindConflict: "conflict",
		KindNotFound: "not-found", KindFatal: "fatal",
	} {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}
