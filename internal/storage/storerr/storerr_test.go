package storerr

import (
	"errors"
	"fmt"
	"testing"
)

func TestErrorFormatting(t *testing.T) {
	e := New(CodeTimeout, "table.Insert", "partition overloaded")
	want := "table.Insert: OperationTimedOut: partition overloaded"
	if e.Error() != want {
		t.Fatalf("Error() = %q, want %q", e.Error(), want)
	}
	e2 := New(CodeNotFound, "blob.Get", "")
	if e2.Error() != "blob.Get: ResourceNotFound" {
		t.Fatalf("Error() = %q", e2.Error())
	}
}

func TestNewf(t *testing.T) {
	e := Newf(CodeBlobExists, "blob.Put", "%s/%s", "c", "b")
	if e.Msg != "c/b" {
		t.Fatalf("Msg = %q", e.Msg)
	}
}

func TestRetryable(t *testing.T) {
	retryable := []Code{CodeTimeout, CodeServerBusy, CodeCorruptRead, CodeConnection, CodeInternal}
	for _, c := range retryable {
		if !New(c, "op", "").Retryable() {
			t.Fatalf("%s should be retryable", c)
		}
	}
	terminal := []Code{CodeBlobExists, CodeNotFound, CodeConflict}
	for _, c := range terminal {
		if New(c, "op", "").Retryable() {
			t.Fatalf("%s should not be retryable", c)
		}
	}
}

func TestCodeOfWrapped(t *testing.T) {
	base := New(CodeServerBusy, "q.Add", "")
	wrapped := fmt.Errorf("attempt 3: %w", base)
	if CodeOf(wrapped) != CodeServerBusy {
		t.Fatalf("CodeOf(wrapped) = %q", CodeOf(wrapped))
	}
	if !IsCode(wrapped, CodeServerBusy) {
		t.Fatal("IsCode(wrapped) = false")
	}
	if IsCode(wrapped, CodeTimeout) {
		t.Fatal("IsCode with wrong code = true")
	}
	if !IsRetryable(wrapped) {
		t.Fatal("IsRetryable(wrapped ServerBusy) = false")
	}
}

func TestCodeOfForeign(t *testing.T) {
	if CodeOf(errors.New("plain")) != "" {
		t.Fatal("CodeOf(plain error) should be empty")
	}
	if CodeOf(nil) != "" {
		t.Fatal("CodeOf(nil) should be empty")
	}
	if IsRetryable(errors.New("plain")) {
		t.Fatal("plain errors are not retryable storage errors")
	}
}
