// Package storerr defines the error taxonomy shared by the simulated Azure
// storage services and the client SDK. The codes mirror the failure classes
// the paper reports (timeout exceptions in Section 3.2, and the ModisAzure
// error table in Section 5.2).
package storerr

import (
	"errors"
	"fmt"
)

// Code identifies a storage error class.
type Code string

// Error codes observed by the paper's experiments and application logs.
const (
	// CodeTimeout is a server-side operation timeout ("timeout exceptions
	// from the server", Section 3.2).
	CodeTimeout Code = "OperationTimedOut"
	// CodeServerBusy is the throttling response of an overloaded service.
	CodeServerBusy Code = "ServerBusy"
	// CodeBlobExists is the conflict on creating a blob that already exists
	// ("Blob already exists", Table 2).
	CodeBlobExists Code = "BlobAlreadyExists"
	// CodeNotFound is returned for missing blobs/entities/messages
	// ("Non-existent source blob", Table 2).
	CodeNotFound Code = "ResourceNotFound"
	// CodeConflict is an entity-level concurrency conflict.
	CodeConflict Code = "Conflict"
	// CodeCorruptRead is a client-side integrity failure on a downloaded
	// blob ("Corrupt blob read", Table 2).
	CodeCorruptRead Code = "CorruptRead"
	// CodeConnection is a transport-level connection failure
	// ("Connection failure", Table 2).
	CodeConnection Code = "ConnectionFailure"
	// CodeInternal is the storage client's internal error
	// ("Internal storage client error", Table 2).
	CodeInternal Code = "InternalClientError"
)

// Error is a typed storage service error.
type Error struct {
	Code Code
	Op   string // the failing operation, e.g. "blob.Get"
	Msg  string
}

func (e *Error) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("%s: %s", e.Op, e.Code)
	}
	return fmt.Sprintf("%s: %s: %s", e.Op, e.Code, e.Msg)
}

// Retryable reports whether retrying the operation can plausibly succeed.
// Conflicts and not-found are semantic outcomes, not transient faults.
func (e *Error) Retryable() bool {
	switch e.Code {
	case CodeBlobExists, CodeNotFound, CodeConflict:
		return false
	default:
		return true
	}
}

// New builds a typed error.
func New(code Code, op, msg string) *Error {
	return &Error{Code: code, Op: op, Msg: msg}
}

// Newf builds a typed error with a formatted message.
func Newf(code Code, op, format string, args ...any) *Error {
	return &Error{Code: code, Op: op, Msg: fmt.Sprintf(format, args...)}
}

// CodeOf extracts the storage error code, or "" for nil/foreign errors.
//
// The nil and direct *Error cases are handled without errors.As: its target
// escapes to the heap on every call, and CodeOf runs once per simulated
// request (the pipeline observability hooks), where a million-client cell
// turns that into the dominant steady-state allocation.
func CodeOf(err error) Code {
	if err == nil {
		return ""
	}
	if se, ok := err.(*Error); ok {
		return se.Code
	}
	var se *Error
	if errors.As(err, &se) {
		return se.Code
	}
	return ""
}

// IsCode reports whether err carries the given storage code.
func IsCode(err error, code Code) bool { return CodeOf(err) == code }

// IsRetryable reports whether err is a retryable storage error.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	if se, ok := err.(*Error); ok {
		return se.Retryable()
	}
	var se *Error
	if errors.As(err, &se) {
		return se.Retryable()
	}
	return false
}
