// Package storerr defines the error taxonomy shared by the simulated Azure
// storage services and the client SDK. The codes mirror the failure classes
// the paper reports (timeout exceptions in Section 3.2, and the ModisAzure
// error table in Section 5.2).
package storerr

import (
	"errors"
	"fmt"
)

// Code identifies a storage error class.
type Code string

// Error codes observed by the paper's experiments and application logs.
const (
	// CodeTimeout is a server-side operation timeout ("timeout exceptions
	// from the server", Section 3.2).
	CodeTimeout Code = "OperationTimedOut"
	// CodeServerBusy is the throttling response of an overloaded service.
	CodeServerBusy Code = "ServerBusy"
	// CodeBlobExists is the conflict on creating a blob that already exists
	// ("Blob already exists", Table 2).
	CodeBlobExists Code = "BlobAlreadyExists"
	// CodeNotFound is returned for missing blobs/entities/messages
	// ("Non-existent source blob", Table 2).
	CodeNotFound Code = "ResourceNotFound"
	// CodeConflict is an entity-level concurrency conflict.
	CodeConflict Code = "Conflict"
	// CodeCorruptRead is a client-side integrity failure on a downloaded
	// blob ("Corrupt blob read", Table 2).
	CodeCorruptRead Code = "CorruptRead"
	// CodeConnection is a transport-level connection failure
	// ("Connection failure", Table 2).
	CodeConnection Code = "ConnectionFailure"
	// CodeInternal is the storage client's internal error
	// ("Internal storage client error", Table 2).
	CodeInternal Code = "InternalClientError"
)

// Codes lists every defined code in declaration order — the iteration
// surface for exhaustiveness tests (every code must classify, every code
// must serve over the wire facade).
func Codes() []Code {
	return []Code{
		CodeTimeout, CodeServerBusy, CodeBlobExists, CodeNotFound,
		CodeConflict, CodeCorruptRead, CodeConnection, CodeInternal,
	}
}

// Kind partitions the code space by how a client should react: retry,
// treat as a semantic conflict, treat as missing, or give up. It is the
// single retry-classification axis — Error.Retryable, IsRetryable and the
// azure RetryPolicy all consult it through Class.
type Kind int

// Classification kinds.
const (
	// KindRetryable marks transient faults a retry can plausibly outlast.
	// Unknown codes classify here: the classic storage client library
	// retried anything it could not prove was semantic, and the pinned
	// retry traces (FuzzRetryClassify) depend on that default.
	KindRetryable Kind = iota
	// KindConflict marks semantic clashes with existing state (blob exists,
	// entity version conflict, stale pop receipt). Retrying cannot help.
	KindConflict
	// KindNotFound marks missing resources. Retrying cannot help.
	KindNotFound
	// KindFatal marks errors that are neither transient nor semantic —
	// client-side bugs. No current code classifies here; the kind exists so
	// the wire facade and future codes have a non-retryable bucket that is
	// not a conflict or a miss.
	KindFatal
)

func (k Kind) String() string {
	switch k {
	case KindConflict:
		return "conflict"
	case KindNotFound:
		return "not-found"
	case KindFatal:
		return "fatal"
	default:
		return "retryable"
	}
}

// Classification is one row of the Class table: the retry kind, the HTTP
// status the wire facade answers with, and the wire code string serialized
// into the XML error envelope.
type Classification struct {
	Kind   Kind
	Status int    // HTTP status for the wire facade (2009 storage REST API)
	Wire   string // code string in the <Error><Code> envelope
}

// Class is the single exported classification table mapping every code to
// its retry kind, HTTP status and wire string. Codes outside the defined
// set (including foreign strings smuggled in by wrappers) classify as
// retryable with status 500, preserving the library's classic
// retry-by-default behaviour.
func Class(code Code) Classification {
	switch code {
	case CodeTimeout:
		return Classification{KindRetryable, 500, string(CodeTimeout)}
	case CodeServerBusy:
		return Classification{KindRetryable, 503, string(CodeServerBusy)}
	case CodeBlobExists:
		return Classification{KindConflict, 409, string(CodeBlobExists)}
	case CodeNotFound:
		return Classification{KindNotFound, 404, string(CodeNotFound)}
	case CodeConflict:
		return Classification{KindConflict, 409, string(CodeConflict)}
	case CodeCorruptRead:
		return Classification{KindRetryable, 500, string(CodeCorruptRead)}
	case CodeConnection:
		return Classification{KindRetryable, 500, string(CodeConnection)}
	case CodeInternal:
		return Classification{KindRetryable, 500, string(CodeInternal)}
	}
	return Classification{KindRetryable, 500, string(code)}
}

// Error is a typed storage service error.
type Error struct {
	Code Code
	Op   string // the failing operation, e.g. "blob.Get"
	Msg  string
}

func (e *Error) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("%s: %s", e.Op, e.Code)
	}
	return fmt.Sprintf("%s: %s: %s", e.Op, e.Code, e.Msg)
}

// Retryable reports whether retrying the operation can plausibly succeed.
// Conflicts and not-found are semantic outcomes, not transient faults. The
// decision is the Class table's, not a second encoding of it.
func (e *Error) Retryable() bool {
	return Class(e.Code).Kind == KindRetryable
}

// New builds a typed error.
func New(code Code, op, msg string) *Error {
	return &Error{Code: code, Op: op, Msg: msg}
}

// Newf builds a typed error with a formatted message.
func Newf(code Code, op, format string, args ...any) *Error {
	return &Error{Code: code, Op: op, Msg: fmt.Sprintf(format, args...)}
}

// CodeOf extracts the storage error code, or "" for nil/foreign errors.
//
// The nil and direct *Error cases are handled without errors.As: its target
// escapes to the heap on every call, and CodeOf runs once per simulated
// request (the pipeline observability hooks), where a million-client cell
// turns that into the dominant steady-state allocation.
func CodeOf(err error) Code {
	if err == nil {
		return ""
	}
	if se, ok := err.(*Error); ok {
		return se.Code
	}
	var se *Error
	if errors.As(err, &se) {
		return se.Code
	}
	return ""
}

// IsCode reports whether err carries the given storage code.
func IsCode(err error, code Code) bool { return CodeOf(err) == code }

// IsRetryable reports whether err is a retryable storage error.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	if se, ok := err.(*Error); ok {
		return se.Retryable()
	}
	var se *Error
	if errors.As(err, &se) {
		return se.Retryable()
	}
	return false
}
