// Package station models a storage-service operation point whose per-op
// latency grows with client concurrency:
//
//	s(n) = s0 · (1 + (n/n0)^γ) · jitter
//
// Closed-loop clients (one outstanding request each, as in all the paper's
// storage experiments) then see aggregate throughput n/s(n), which for γ = 2
// peaks exactly at n = n0 and declines beyond it — the single-peak shape the
// paper measured for table Update (peak at 8 clients), table Delete (peak at
// 128) and queue Add/Receive (peak at 64). For γ < 1 or n0 beyond the tested
// range the aggregate keeps growing while per-client rates decay gently
// (table Insert/Query, queue Peek).
package station

import (
	"math"
	"time"

	"azureobs/internal/sim"
	"azureobs/internal/simrand"
)

// Config parameterises one operation's contention model.
type Config struct {
	// S0 is the uncontended service time.
	S0 time.Duration
	// N0 is the contention knee: with Gamma=2, aggregate throughput peaks
	// at N0 concurrent clients.
	N0 float64
	// Gamma is the contention exponent.
	Gamma float64
	// CV is the lognormal jitter coefficient of variation (0 = none).
	CV float64
}

// Station is a shared operation point. Concurrency n in the latency law is
// the number of in-flight Visits: closed-loop clients (no think time) are
// inside a Visit essentially always, so the in-flight count equals the
// offered concurrency without explicit registration. Attach/Detach allow
// pinning additional standing load (e.g. background pollers between polls).
type Station struct {
	cfg      Config
	rng      *simrand.RNG
	attached int
	ops      uint64
}

// New builds a station.
func New(cfg Config, rng *simrand.RNG) *Station {
	if cfg.S0 <= 0 || cfg.N0 <= 0 || cfg.Gamma < 0 {
		panic("station: bad config")
	}
	return &Station{cfg: cfg, rng: rng}
}

// Attach registers one more concurrent client.
func (st *Station) Attach() { st.attached++ }

// Detach unregisters a client.
func (st *Station) Detach() {
	if st.attached == 0 {
		panic("station: detach without attach")
	}
	st.attached--
}

// Attached returns the current client count.
func (st *Station) Attached() int { return st.attached }

// Ops returns the number of operations served.
func (st *Station) Ops() uint64 { return st.ops }

// MeanLatency returns the expected service time at concurrency n.
func (st *Station) MeanLatency(n int) time.Duration {
	if n < 1 {
		n = 1
	}
	f := 1 + math.Pow(float64(n)/st.cfg.N0, st.cfg.Gamma)
	return time.Duration(float64(st.cfg.S0) * f)
}

// SampleLatency draws one service time at the current concurrency.
func (st *Station) SampleLatency() time.Duration {
	mean := st.MeanLatency(st.attached).Seconds()
	if st.cfg.CV <= 0 {
		return time.Duration(mean * float64(time.Second))
	}
	return simrand.Duration(simrand.LogNormalMeanCV(mean, st.cfg.CV), st.rng)
}

// Visit performs one operation: the calling process sleeps for a service
// time sampled at the current concurrency (including this visit), plus
// extra (payload transfer, replication sync). It returns the total service
// latency. A killed visitor still detaches.
func (st *Station) Visit(p *sim.Proc, extra time.Duration) time.Duration {
	st.attached++
	defer func() { st.attached-- }()
	d := st.SampleLatency() + extra
	p.Sleep(d)
	st.ops++
	return d
}

// BeginVisit starts a flat-mode visit: the caller must sleep the returned
// service latency (extra included) on its actor, then call EndVisit. The
// latency is drawn with the visit already counted in the concurrency — the
// same order Visit uses — so a flat visitor and a goroutine visitor draw
// identical samples.
func (st *Station) BeginVisit(extra time.Duration) time.Duration {
	st.attached++
	return st.SampleLatency() + extra
}

// EndVisit completes a flat-mode visit begun with BeginVisit.
func (st *Station) EndVisit() {
	if st.attached == 0 {
		panic("station: EndVisit without BeginVisit")
	}
	st.attached--
	st.ops++
}
