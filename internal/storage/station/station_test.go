package station

import (
	"math"
	"testing"
	"time"

	"azureobs/internal/sim"
	"azureobs/internal/simrand"
)

func TestMeanLatencyLaw(t *testing.T) {
	st := New(Config{S0: 10 * time.Millisecond, N0: 8, Gamma: 2}, simrand.New(1))
	// n=1: 10ms·(1+1/64) ≈ 10.16ms; n=8: 20ms; n=16: 50ms.
	if got := st.MeanLatency(8); got != 20*time.Millisecond {
		t.Fatalf("MeanLatency(8) = %v, want 20ms", got)
	}
	if got := st.MeanLatency(16); got != 50*time.Millisecond {
		t.Fatalf("MeanLatency(16) = %v, want 50ms", got)
	}
	if got := st.MeanLatency(0); got != st.MeanLatency(1) {
		t.Fatal("MeanLatency clamps n to 1")
	}
}

func TestAggregatePeaksAtN0ForGamma2(t *testing.T) {
	st := New(Config{S0: 10 * time.Millisecond, N0: 64, Gamma: 2}, simrand.New(1))
	agg := func(n int) float64 { return float64(n) / st.MeanLatency(n).Seconds() }
	peak := agg(64)
	for _, n := range []int{1, 8, 16, 32, 128, 192} {
		if agg(n) > peak {
			t.Fatalf("aggregate at n=%d (%f) exceeds peak at n0=64 (%f)", n, agg(n), peak)
		}
	}
	// Strictly rising before and falling after.
	if agg(32) >= peak || agg(128) >= peak {
		t.Fatal("aggregate not peaked at n0")
	}
}

func TestVisitSelfAttaches(t *testing.T) {
	eng := sim.NewEngine()
	st := New(Config{S0: 100 * time.Millisecond, N0: 8, Gamma: 2}, simrand.New(1))
	var seen []int
	for i := 0; i < 4; i++ {
		eng.Spawn("c", func(p *sim.Proc) {
			p.Yield() // let all four start
			st.Visit(p, 0)
			seen = append(seen, st.Attached())
		})
	}
	maxAttached := 0
	eng.Schedule(50*time.Millisecond, func() {
		maxAttached = st.Attached()
	})
	eng.Run()
	if maxAttached != 4 {
		t.Fatalf("attached mid-visit = %d, want 4", maxAttached)
	}
	if st.Attached() != 0 {
		t.Fatalf("attached after drain = %d, want 0", st.Attached())
	}
	if st.Ops() != 4 {
		t.Fatalf("ops = %d, want 4", st.Ops())
	}
}

func TestVisitLatencyScalesWithConcurrency(t *testing.T) {
	// 64 closed-loop clients against an n0=8 station must see much higher
	// per-op latency than a single client.
	measure := func(clients int) float64 {
		eng := sim.NewEngine()
		st := New(Config{S0: 10 * time.Millisecond, N0: 8, Gamma: 2}, simrand.New(1))
		var total time.Duration
		var ops int
		for i := 0; i < clients; i++ {
			eng.Spawn("c", func(p *sim.Proc) {
				for j := 0; j < 50; j++ {
					total += st.Visit(p, 0)
					ops++
				}
			})
		}
		eng.Run()
		return (total / time.Duration(ops)).Seconds()
	}
	lone := measure(1)
	crowd := measure(64)
	if crowd < 10*lone {
		t.Fatalf("latency at 64 clients (%f) not ≫ at 1 (%f)", crowd, lone)
	}
}

func TestVisitExtraAdds(t *testing.T) {
	eng := sim.NewEngine()
	st := New(Config{S0: 10 * time.Millisecond, N0: 1000, Gamma: 1}, simrand.New(1))
	var d time.Duration
	eng.Spawn("c", func(p *sim.Proc) {
		d = st.Visit(p, 500*time.Millisecond)
	})
	eng.Run()
	if d < 500*time.Millisecond {
		t.Fatalf("visit with extra = %v, want ≥ 500ms", d)
	}
}

func TestJitterCV(t *testing.T) {
	eng := sim.NewEngine()
	st := New(Config{S0: 100 * time.Millisecond, N0: 1000, Gamma: 1, CV: 0.3}, simrand.New(7))
	var sum, sum2 float64
	n := 5000
	eng.Spawn("c", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			v := st.Visit(p, 0).Seconds()
			sum += v
			sum2 += v * v
		}
	})
	eng.Run()
	mean := sum / float64(n)
	cv := math.Sqrt(sum2/float64(n)-mean*mean) / mean
	if math.Abs(mean-0.1001) > 0.005 {
		t.Fatalf("mean latency = %f, want ~0.1", mean)
	}
	if math.Abs(cv-0.3) > 0.05 {
		t.Fatalf("cv = %f, want ~0.3", cv)
	}
}

func TestAttachDetachExplicit(t *testing.T) {
	st := New(Config{S0: time.Millisecond, N0: 8, Gamma: 2}, simrand.New(1))
	st.Attach()
	st.Attach()
	if st.Attached() != 2 {
		t.Fatalf("attached = %d", st.Attached())
	}
	st.Detach()
	st.Detach()
	defer func() {
		if recover() == nil {
			t.Fatal("detach below zero did not panic")
		}
	}()
	st.Detach()
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config did not panic")
		}
	}()
	New(Config{S0: 0, N0: 8, Gamma: 2}, simrand.New(1))
}
