package sqlsvc

import (
	"fmt"
	"math"
	"testing"
	"time"

	"azureobs/internal/netsim"
	"azureobs/internal/sim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/storerr"
)

func newSvc() (*sim.Engine, *Service) {
	eng := sim.NewEngine()
	return eng, New(eng, simrand.New(1), Config{})
}

func TestEditionCaps(t *testing.T) {
	if Web.SizeCap() != 1*netsim.GB || Business.SizeCap() != 10*netsim.GB {
		t.Fatal("edition caps wrong")
	}
}

func TestCRUDRoundtrip(t *testing.T) {
	eng, svc := newSvc()
	db := svc.CreateDatabase("app", Web)
	db.CreateTable("t")
	eng.Spawn("c", func(p *sim.Proc) {
		conn, err := svc.Open(p, "app", 0)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		defer conn.Close()
		if err := conn.Insert(p, "t", "k1", 1000); err != nil {
			t.Errorf("insert: %v", err)
		}
		if err := conn.Insert(p, "t", "k1", 1000); !storerr.IsCode(err, storerr.CodeConflict) {
			t.Errorf("duplicate insert = %v", err)
		}
		row, err := conn.Select(p, "t", "k1")
		if err != nil || row.Size != 1000 || row.Version != 1 {
			t.Errorf("select = %+v, %v", row, err)
		}
		if err := conn.Update(p, "t", "k1", 2000); err != nil {
			t.Errorf("update: %v", err)
		}
		row, _ = conn.Select(p, "t", "k1")
		if row.Size != 2000 || row.Version != 2 {
			t.Errorf("after update = %+v", row)
		}
		if db.Size() != 2000 {
			t.Errorf("db size = %d", db.Size())
		}
		if err := conn.Delete(p, "t", "k1"); err != nil {
			t.Errorf("delete: %v", err)
		}
		if _, err := conn.Select(p, "t", "k1"); !storerr.IsCode(err, storerr.CodeNotFound) {
			t.Errorf("select after delete = %v", err)
		}
		if db.Size() != 0 {
			t.Errorf("db size after delete = %d", db.Size())
		}
	})
	eng.Run()
}

func TestMissingObjects(t *testing.T) {
	eng, svc := newSvc()
	svc.CreateDatabase("app", Web)
	eng.Spawn("c", func(p *sim.Proc) {
		if _, err := svc.Open(p, "ghost", 0); !storerr.IsCode(err, storerr.CodeNotFound) {
			t.Errorf("open missing db = %v", err)
		}
		conn, _ := svc.Open(p, "app", 0)
		if err := conn.Insert(p, "ghost", "k", 1); !storerr.IsCode(err, storerr.CodeNotFound) {
			t.Errorf("insert into missing table = %v", err)
		}
	})
	eng.Run()
}

func TestConnectionThrottling(t *testing.T) {
	eng := sim.NewEngine()
	svc := New(eng, simrand.New(1), Config{MaxConnections: 4})
	svc.CreateDatabase("app", Web)
	opened, throttled := 0, 0
	for i := 0; i < 10; i++ {
		i := i
		eng.Spawn("c", func(p *sim.Proc) {
			conn, err := svc.Open(p, "app", i)
			if storerr.IsCode(err, storerr.CodeServerBusy) {
				throttled++
				return
			}
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			opened++
			p.Sleep(time.Minute) // hold the connection
			conn.Close()
		})
	}
	eng.Run()
	if opened != 4 || throttled != 6 {
		t.Fatalf("opened/throttled = %d/%d, want 4/6", opened, throttled)
	}
	if svc.Throttled() != 6 {
		t.Fatalf("Throttled() = %d", svc.Throttled())
	}
}

func TestConnectionReleaseAllowsReuse(t *testing.T) {
	eng := sim.NewEngine()
	svc := New(eng, simrand.New(1), Config{MaxConnections: 1})
	svc.CreateDatabase("app", Web)
	var secondOK bool
	eng.Spawn("a", func(p *sim.Proc) {
		conn, err := svc.Open(p, "app", 0)
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(10 * time.Second)
		conn.Close()
		conn.Close() // double close is a no-op
	})
	eng.Spawn("b", func(p *sim.Proc) {
		p.Sleep(time.Minute)
		conn, err := svc.Open(p, "app", 1)
		if err == nil {
			secondOK = true
			conn.Close()
		}
	})
	eng.Run()
	if !secondOK {
		t.Fatal("released connection not reusable")
	}
}

func TestDatabaseFull(t *testing.T) {
	eng, svc := newSvc()
	db := svc.CreateDatabase("tiny", Web) // 1 GB cap
	db.CreateTable("t")
	eng.Spawn("c", func(p *sim.Proc) {
		conn, _ := svc.Open(p, "tiny", 0)
		defer conn.Close()
		// Fill close to the cap instantly, then push over it.
		svc.Seed("tiny", "t", "big", int(Web.SizeCap())-500)
		if err := conn.Insert(p, "t", "one-more", 1000); !storerr.IsCode(err, storerr.CodeServerBusy) {
			t.Errorf("insert past cap = %v", err)
		}
		// Update that would exceed the cap also fails and rolls back.
		if err := conn.Insert(p, "t", "small", 100); err != nil {
			t.Errorf("small insert: %v", err)
		}
		if err := conn.Update(p, "t", "small", 10000); !storerr.IsCode(err, storerr.CodeServerBusy) {
			t.Errorf("update past cap = %v", err)
		}
		row, _ := conn.Select(p, "t", "small")
		if row.Size != 100 {
			t.Errorf("failed update mutated row: %d", row.Size)
		}
	})
	eng.Run()
}

func TestSelectRange(t *testing.T) {
	eng, svc := newSvc()
	svc.CreateDatabase("app", Business)
	for i := 0; i < 100; i++ {
		svc.Seed("app", "t", fmt.Sprintf("k%03d", i), 100)
	}
	eng.Spawn("c", func(p *sim.Proc) {
		conn, _ := svc.Open(p, "app", 0)
		defer conn.Close()
		rows, err := conn.SelectRange(p, "t", "k010", "k020")
		if err != nil {
			t.Errorf("range: %v", err)
			return
		}
		if len(rows) != 10 {
			t.Errorf("range rows = %d, want 10", len(rows))
		}
		for i := 1; i < len(rows); i++ {
			if rows[i].Key <= rows[i-1].Key {
				t.Error("range not sorted")
			}
		}
	})
	eng.Run()
}

func TestClosedConnRejected(t *testing.T) {
	eng, svc := newSvc()
	svc.CreateDatabase("app", Web)
	svc.CreateDatabase("app", Business) // idempotent: keeps Web
	eng.Spawn("c", func(p *sim.Proc) {
		conn, _ := svc.Open(p, "app", 0)
		conn.Close()
		if err := conn.Insert(p, "t", "k", 1); err == nil {
			t.Error("closed connection accepted an op")
		}
	})
	eng.Run()
}

func TestLatencyGrowsWithConcurrency(t *testing.T) {
	rate := func(clients int) float64 {
		eng := sim.NewEngine()
		svc := New(eng, simrand.New(2), Config{MaxConnections: 256})
		svc.CreateDatabase("app", Business)
		svc.CreateDatabase("app", Business)
		db := svc.dbs["app"]
		db.CreateTable("t")
		var ops int
		var busy time.Duration
		for c := 0; c < clients; c++ {
			c := c
			eng.Spawn("c", func(p *sim.Proc) {
				conn, err := svc.Open(p, "app", c)
				if err != nil {
					t.Error(err)
					return
				}
				defer conn.Close()
				start := p.Now()
				for i := 0; i < 50; i++ {
					if err := conn.Insert(p, "t", fmt.Sprintf("k-%d-%d", c, i), 1000); err != nil {
						t.Error(err)
						return
					}
					ops++
				}
				busy += p.Now() - start
			})
		}
		eng.Run()
		return float64(ops) / busy.Seconds()
	}
	solo, crowd := rate(1), rate(128)
	if crowd >= solo {
		t.Fatalf("per-client insert rate did not degrade: %v vs %v", solo, crowd)
	}
}

// TestFaultRatesMatchConfig: the reqpath admission faults added to the SQL
// service fire at their configured probabilities (5σ binomial tolerance).
func TestFaultRatesMatchConfig(t *testing.T) {
	const pConn, pBusy = 0.12, 0.08
	const n = 4000
	eng := sim.NewEngine()
	svc := New(eng, simrand.New(5), Config{ConnFailProb: pConn, ServerBusyProb: pBusy})
	svc.CreateDatabase("app", 0)
	svc.Seed("app", "t", "k", 256)
	var connFail, busy int
	eng.Spawn("c", func(p *sim.Proc) {
		// Open is itself under fault injection; retry until a session sticks.
		var conn *Conn
		for conn == nil {
			var err error
			conn, err = svc.Open(p, "app", 0)
			if err != nil && !storerr.IsRetryable(err) {
				t.Errorf("Open: %v", err)
				return
			}
		}
		for i := 0; i < n; i++ {
			_, err := conn.Select(p, "t", "k")
			switch {
			case err == nil:
			case storerr.IsCode(err, storerr.CodeConnection):
				connFail++
			case storerr.IsCode(err, storerr.CodeServerBusy):
				busy++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}
	})
	eng.Run()
	check := func(name string, got int, want float64) {
		sigma := math.Sqrt(want * (1 - want) / n)
		if rate := float64(got) / n; math.Abs(rate-want) > 5*sigma {
			t.Errorf("%s rate %.4f, want %.3f (±%.4f)", name, rate, want, 5*sigma)
		}
	}
	check("conn-fail", connFail, pConn)
	check("server-busy", busy, pBusy*(1-pConn))
}
