// Package sqlsvc simulates SQL Azure Database as evaluated in the HPDC 2010
// version of the paper (the journal revision this reproduction follows
// omitted the SQL Azure section "due to space constraints", so unlike the
// other services this substrate's latency constants are plausible for the
// era but not calibrated against published curves — the *mechanisms* are
// the documented ones: size-capped database editions, a bounded connection
// pool with throttling, and relational operations that slow under
// concurrency like any shared SQL tier).
//
// The service supports the experiment the paper ran: simple key-addressed
// INSERT/SELECT/UPDATE/DELETE plus range scans, driven by 1-192 concurrent
// clients, contrasted with table storage.
package sqlsvc

import (
	"fmt"
	"sort"
	"time"

	"azureobs/internal/netsim"
	"azureobs/internal/sim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/reqpath"
	"azureobs/internal/storage/station"
	"azureobs/internal/storage/storerr"
)

// Edition is the SQL Azure database edition, which fixes the size cap.
type Edition int

// Editions of the 2010 service.
const (
	Web      Edition = iota // 1 GB cap
	Business                // 10 GB cap
)

// SizeCap returns the edition's database size limit in bytes.
func (e Edition) SizeCap() int64 {
	if e == Business {
		return 10 * netsim.GB
	}
	return 1 * netsim.GB
}

func (e Edition) String() string {
	if e == Business {
		return "Business"
	}
	return "Web"
}

// Config parameterises the service; zero fields take defaults.
type Config struct {
	// Insert/Select/Update/Delete are the per-operation contention models.
	Insert, Select, Update, Delete station.Config
	// MaxConnections bounds concurrent sessions per database; SQL Azure
	// throttled aggressively compared to the storage services.
	MaxConnections int
	// ScanSecPerRow prices range scans.
	ScanSecPerRow float64
	// ClientBW converts payloads to transfer time.
	ClientBW netsim.Bandwidth

	// Fault injection (default 0; the ModisAzure campaign raises them).
	ConnFailProb   float64
	ServerBusyProb float64
}

// DefaultConfig returns era-plausible parameters (documented as
// uncalibrated; see the package comment).
func DefaultConfig() Config {
	return Config{
		Insert:         station.Config{S0: 12 * time.Millisecond, N0: 48, Gamma: 1.6, CV: 0.3},
		Select:         station.Config{S0: 6 * time.Millisecond, N0: 64, Gamma: 1.4, CV: 0.3},
		Update:         station.Config{S0: 10 * time.Millisecond, N0: 48, Gamma: 1.6, CV: 0.3},
		Delete:         station.Config{S0: 10 * time.Millisecond, N0: 48, Gamma: 1.6, CV: 0.3},
		MaxConnections: 64,
		ScanSecPerRow:  8e-6,
		ClientBW:       13 * netsim.MBps,
	}
}

// Row is one relational row: a primary key plus a payload size (contents are
// not materialised, as elsewhere in the simulation).
type Row struct {
	Key     string
	Size    int
	Version int
}

// Database is one SQL Azure database.
type Database struct {
	Name    string
	Edition Edition

	tables map[string]map[string]*Row
	bytes  int64

	conns int
}

// Size returns the database's current size in bytes.
func (d *Database) Size() int64 { return d.bytes }

// Connections returns the open session count.
func (d *Database) Connections() int { return d.conns }

// Service is the SQL Azure endpoint.
type Service struct {
	cfg Config
	rng *simrand.RNG
	pl  *reqpath.Pipeline

	insert, sel, update, del *station.Station

	dbs map[string]*Database

	throttled uint64
}

// New creates the service.
func New(eng *sim.Engine, rng *simrand.RNG, cfg Config) *Service {
	def := DefaultConfig()
	if cfg.Insert.S0 == 0 {
		cfg.Insert = def.Insert
	}
	if cfg.Select.S0 == 0 {
		cfg.Select = def.Select
	}
	if cfg.Update.S0 == 0 {
		cfg.Update = def.Update
	}
	if cfg.Delete.S0 == 0 {
		cfg.Delete = def.Delete
	}
	if cfg.MaxConnections == 0 {
		cfg.MaxConnections = def.MaxConnections
	}
	if cfg.ScanSecPerRow == 0 {
		cfg.ScanSecPerRow = def.ScanSecPerRow
	}
	if cfg.ClientBW == 0 {
		cfg.ClientBW = def.ClientBW
	}
	r := rng.Fork("sqlsvc")
	return &Service{
		cfg: cfg,
		rng: r,
		pl: reqpath.New(r, reqpath.Config{
			Service: "sql",
			Faults: reqpath.FaultConfig{
				ConnFailProb:   cfg.ConnFailProb,
				ServerBusyProb: cfg.ServerBusyProb,
			},
			UploadBW:   cfg.ClientBW,
			DownloadBW: cfg.ClientBW,
		}),
		insert: station.New(cfg.Insert, r.Fork("insert")),
		sel:    station.New(cfg.Select, r.Fork("select")),
		update: station.New(cfg.Update, r.Fork("update")),
		del:    station.New(cfg.Delete, r.Fork("delete")),
		dbs:    make(map[string]*Database),
	}
}

// Pipeline exposes the service's request pipeline for hook installation.
func (s *Service) Pipeline() *reqpath.Pipeline { return s.pl }

// Throttled returns how many connection attempts were rejected.
func (s *Service) Throttled() uint64 { return s.throttled }

// CreateDatabase provisions a database (idempotent for the same edition).
func (s *Service) CreateDatabase(name string, e Edition) *Database {
	db, ok := s.dbs[name]
	if !ok {
		db = &Database{Name: name, Edition: e, tables: make(map[string]map[string]*Row)}
		s.dbs[name] = db
	}
	return db
}

// CreateTable adds a table to a database (idempotent).
func (db *Database) CreateTable(name string) {
	if _, ok := db.tables[name]; !ok {
		db.tables[name] = make(map[string]*Row)
	}
}

// Conn is one open connection. SQL Azure's tier bounds concurrent
// connections; past the cap, Open is rejected with ServerBusy — the
// throttling behaviour applications had to retry around.
type Conn struct {
	svc *Service
	db  *Database
	id  int

	closed bool
}

// handshake is the TDS connection-establishment latency.
var handshake = simrand.LogNormalMeanCV(0.025, 0.3)

// Open establishes a connection, spending a handshake latency. It fails
// with ServerBusy when the database's connection cap is reached.
func (s *Service) Open(p *sim.Proc, dbName string, id int) (conn *Conn, err error) {
	err = s.pl.Do(p, "sql.Open", func(c *reqpath.Ctx) error {
		db, ok := s.dbs[dbName]
		if !ok {
			return c.Failf(storerr.CodeNotFound, "database %s", dbName)
		}
		c.P.Sleep(c.Sample(handshake))
		if db.conns >= s.cfg.MaxConnections {
			s.throttled++
			return c.Failf(storerr.CodeServerBusy, "connection limit %d reached", s.cfg.MaxConnections)
		}
		db.conns++
		conn = &Conn{svc: s, db: db, id: id}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return conn, nil
}

// Close releases the connection. Closing twice is a no-op.
func (c *Conn) Close() {
	if !c.closed {
		c.closed = true
		c.db.conns--
	}
}

func (c *Conn) check(op string) error {
	if c.closed {
		return storerr.New(storerr.CodeInternal, op, "connection closed")
	}
	return nil
}

func (c *Conn) table(op, table string) (map[string]*Row, error) {
	tbl, ok := c.db.tables[table]
	if !ok {
		return nil, storerr.Newf(storerr.CodeNotFound, op, "table %s", table)
	}
	return tbl, nil
}

// Insert adds a row; duplicate keys conflict; exceeding the edition cap
// fails with ServerBusy-class pressure (SQL Azure returned error 40544).
func (c *Conn) Insert(p *sim.Proc, table, key string, size int) error {
	const op = "sql.Insert"
	return c.svc.pl.Do(p, op, func(rc *reqpath.Ctx) error {
		if err := c.check(op); err != nil {
			return err
		}
		tbl, err := c.table(op, table)
		if err != nil {
			return err
		}
		rc.Station(c.svc.insert, rc.UploadCost(size))
		if _, exists := tbl[key]; exists {
			return rc.Failf(storerr.CodeConflict, "duplicate key %s", key)
		}
		if c.db.bytes+int64(size) > c.db.Edition.SizeCap() {
			return rc.Failf(storerr.CodeServerBusy,
				"database full: %s edition caps at %d bytes", c.db.Edition, c.db.Edition.SizeCap())
		}
		tbl[key] = &Row{Key: key, Size: size, Version: 1}
		c.db.bytes += int64(size)
		return nil
	})
}

// Select fetches one row by primary key.
func (c *Conn) Select(p *sim.Proc, table, key string) (row *Row, err error) {
	const op = "sql.Select"
	err = c.svc.pl.Do(p, op, func(rc *reqpath.Ctx) error {
		if err := c.check(op); err != nil {
			return err
		}
		tbl, err := c.table(op, table)
		if err != nil {
			return err
		}
		r, ok := tbl[key]
		respSize := 0
		if ok {
			respSize = r.Size
		}
		rc.Station(c.svc.sel, rc.DownloadCost(respSize))
		if !ok {
			return rc.Failf(storerr.CodeNotFound, "key %s", key)
		}
		row = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return row, nil
}

// SelectRange scans keys in [lo, hi) in key order, pricing the scan by row
// count — the indexed range query a relational tier offers that table
// storage (keys-only) cannot.
func (c *Conn) SelectRange(p *sim.Proc, table, lo, hi string) (out []*Row, err error) {
	const op = "sql.SelectRange"
	err = c.svc.pl.Do(p, op, func(rc *reqpath.Ctx) error {
		if err := c.check(op); err != nil {
			return err
		}
		tbl, err := c.table(op, table)
		if err != nil {
			return err
		}
		var bytes int
		for k, r := range tbl {
			if k >= lo && k < hi {
				out = append(out, r)
				bytes += r.Size
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
		scan := time.Duration(float64(len(tbl)) * c.svc.cfg.ScanSecPerRow * float64(time.Second))
		rc.Station(c.svc.sel, scan+rc.DownloadCost(bytes))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Update rewrites a row's payload.
func (c *Conn) Update(p *sim.Proc, table, key string, size int) error {
	const op = "sql.Update"
	return c.svc.pl.Do(p, op, func(rc *reqpath.Ctx) error {
		if err := c.check(op); err != nil {
			return err
		}
		tbl, err := c.table(op, table)
		if err != nil {
			return err
		}
		rc.Station(c.svc.update, rc.UploadCost(size))
		row, ok := tbl[key]
		if !ok {
			return rc.Failf(storerr.CodeNotFound, "key %s", key)
		}
		c.db.bytes += int64(size) - int64(row.Size)
		if c.db.bytes > c.db.Edition.SizeCap() {
			c.db.bytes -= int64(size) - int64(row.Size)
			return rc.Failf(storerr.CodeServerBusy, "database full")
		}
		row.Size = size
		row.Version++
		return nil
	})
}

// Delete removes a row.
func (c *Conn) Delete(p *sim.Proc, table, key string) error {
	const op = "sql.Delete"
	return c.svc.pl.Do(p, op, func(rc *reqpath.Ctx) error {
		if err := c.check(op); err != nil {
			return err
		}
		tbl, err := c.table(op, table)
		if err != nil {
			return err
		}
		rc.Station(c.svc.del, 0)
		row, ok := tbl[key]
		if !ok {
			return rc.Failf(storerr.CodeNotFound, "key %s", key)
		}
		delete(tbl, key)
		c.db.bytes -= int64(row.Size)
		return nil
	})
}

// Seed inserts a row instantly (setup helper).
func (s *Service) Seed(dbName, table, key string, size int) {
	db := s.dbs[dbName]
	if db == nil {
		panic(fmt.Sprintf("sqlsvc: seed into missing database %s", dbName))
	}
	db.CreateTable(table)
	if _, exists := db.tables[table][key]; !exists {
		db.tables[table][key] = &Row{Key: key, Size: size, Version: 1}
		db.bytes += int64(size)
	}
}
