package modis

// sharded.go runs the ModisAzure campaign on a sim.Domains group — the
// coupled-workload counterpart of the embarrassingly decomposable fig1/fig2
// sharding. The partition:
//
//   - Domain 0 hosts the coordinator: the portal, the service manager, all
//     Request state, task dispatch and the campaign-level books, on a small
//     dedicated cloud (request table + service queue).
//   - The workload splits into cfg.Shards fixed shards, shard s on domain
//     s mod width. A shard owns a full cloud (fabric with its own
//     degradation stream, storage services), a slice of the worker fleet,
//     its partition of the task queue, and — under chaos — its own fault
//     engine.
//
// Everything that crosses a shard boundary is boundary mail on the group:
// task dispatches outbound, completion/retry/crash notes inbound. Raw mail
// reaches the coordinator in (source domain, send order) — an order that
// depends on the width, since co-located shards share a domain — so the
// coordinator buffers notes in an inbox and drains it in the canonical
// (send time, shard, per-shard seq) order once per boundary. Because the
// window grid is a pure function of simulation state, the set of notes per
// boundary, and with it every dispatch decision, RNG stream, and tallied
// stat, is bit-identical at every domain width. Shard identity (streams,
// cloud seeds, fleet split) keys off the shard index alone, never the
// domain, which is what lets the width be a pure performance knob.
//
// The timeout monitor's kill rule evaluates where the legacy path evaluates
// it — at the executing worker — but its verdicts (VMTimeout retries), like
// all completion traffic, travel to domain 0 as notes, so re-enqueue always
// crosses the window boundary and lands via round-robin on a fresh shard.

import (
	"fmt"
	"sort"
	"time"

	"azureobs/internal/azure"
	"azureobs/internal/chaos"
	"azureobs/internal/fabric"
	"azureobs/internal/oplog"
	"azureobs/internal/sim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/storerr"
)

// defaultShards is the fixed shard count: wide enough that the 8-rung bench
// ladder keeps every domain busy, small enough that shard fabrics stay
// cheap. The trace depends on this number, not on the domain width.
const defaultShards = 8

// Coordinator window tuning: the adaptive window starts at the minimum and
// self-tunes toward shardWindowTarget fired events per round, never
// exceeding the maximum (which bounds dispatch/completion mail latency to
// four simulated hours).
const (
	shardWindowMin    = time.Minute
	shardWindowMax    = 4 * time.Hour
	shardWindowTarget = 8192
)

// noteKind tags the shard→coordinator notifications.
type noteKind uint8

const (
	noteFinish noteKind = iota // execution completed or failed terminally
	noteRetry                  // retryable outcome, attempts remain
	noteCrash                  // host crash aborted the execution
	numNoteKinds
)

// taskNote is one shard→coordinator notification. at is the shard's clock
// at send time; (at, shard, seq) is the canonical drain order.
type taskNote struct {
	shard int
	seq   uint64
	at    time.Duration
	task  *Task
	kind  noteKind
}

// shard is one partition of the campaign's workload: a slice of the worker
// fleet on its own cloud, with its own task queue, RNG streams, stats and
// (under chaos) fault engine. Fields mirror the legacy Campaign's
// worker-side state; only this shard's engine goroutine touches them.
type shard struct {
	camp *Campaign
	idx  int
	eng  *sim.Engine

	cloud *azure.Cloud
	rng   *simrand.RNG
	retry azure.RetryPolicy
	stats *Stats
	log   *oplog.Log

	queue     *taskQueue
	dispatchQ *sim.Queue[*Task]
	workers   []*fabric.VM

	procs     []*sim.Proc
	current   []*Task
	execStart []time.Duration
	vmSlot    map[*fabric.VM]int
	reacqRNG  *simrand.RNG
	respawns  int
	chaos     *chaos.Engine

	// noteSeq stamps outbound notes; sent counts them by kind for the
	// conservation books.
	noteSeq uint64
	sent    [numNoteKinds]uint64
}

// newShardedCampaign assembles the sharded form. cfg already has defaults
// applied and cfg.Domains ≥ 1.
func newShardedCampaign(cfg Config) *Campaign {
	requested := cfg.Domains
	if cfg.Domains > cfg.Shards {
		cfg.Domains = cfg.Shards
	}
	group := sim.NewDomains(cfg.Domains)
	eng0 := group.Domain(0)

	// The coordinator cloud carries only the request table and service
	// queue: a small fabric, no degradation process (no workers run here).
	ccfg := azure.Config{Seed: cfg.Seed, Faults: cfg.StorageFaults}
	ccfg.Fabric = fabric.Config{Hosts: 8, HostsPerRack: 4}
	cloud := azure.NewCloudOn(eng0, ccfg)

	c := &Campaign{
		cfg:              cfg,
		cloud:            cloud,
		rng:              simrand.New(cfg.Seed).Fork("modis"),
		Stats:            newCampaignStats(cfg.Days),
		Log:              oplog.New(256),
		Analyzer:         oplog.NewTaxonomyAnalyzer(string(OutcomeVMTimeout)),
		group:            group,
		requestedDomains: requested,
	}
	c.retry = azure.DefaultRetryPolicy().WithJitter(0.5, c.rng.Fork("retry"))
	c.Log.Subscribe(c.Analyzer.Sink())
	cloud.Table.CreateTable("modis-requests")
	c.reqQueue = cloud.Queue.CreateQueue("modis-requests")
	c.reqTokens = sim.NewQueue[*Request]()

	dcfg := modisDegradation()
	if cfg.Degradation != nil {
		dcfg = *cfg.Degradation
	}
	var ch *chaos.Config
	if cfg.Chaos != nil && cfg.Chaos.Enabled() {
		cc := *cfg.Chaos
		if cc.Horizon == 0 {
			cc.Horizon = time.Duration(cfg.Days) * 24 * time.Hour
		}
		ch = &cc
	}

	c.shards = make([]*shard, cfg.Shards)
	for s := range c.shards {
		c.shards[s] = c.newShard(s, dcfg, ch)
	}
	return c
}

// newShard builds shard s. Everything about the shard — cloud seed, RNG
// roots, fleet slice — keys off s, so the shard's trace is invariant under
// the domain width.
func (c *Campaign) newShard(s int, dcfg fabric.DegradationConfig, ch *chaos.Config) *shard {
	cfg := c.cfg
	eng := c.group.Domain(s % c.group.N())

	scfg := azure.Config{Seed: cfg.Seed + uint64(s+1)*7919, Faults: cfg.StorageFaults}
	scfg.Fabric = fabric.Config{Hosts: 64, HostsPerRack: 16, Degradation: true}
	shardDeg := dcfg
	scfg.Fabric.DegradationConfig = &shardDeg
	cloud := azure.NewCloudOn(eng, scfg)

	// Fleet split: Workers/Shards each, the remainder spread from shard 0.
	n := cfg.Workers / cfg.Shards
	if s < cfg.Workers%cfg.Shards {
		n++
	}

	root := c.rng.ForkDomain(s)
	sh := &shard{
		camp:      c,
		idx:       s,
		eng:       eng,
		cloud:     cloud,
		rng:       root,
		retry:     azure.DefaultRetryPolicy().WithJitter(0.5, root.Fork("retry")),
		stats:     newCampaignStats(cfg.Days),
		log:       oplog.New(256),
		dispatchQ: sim.NewQueue[*Task](),
		workers:   cloud.Controller.ReadyFleet(n, fabric.Worker, fabric.Small),
	}
	sh.queue = &taskQueue{
		do:     sh.storageDo,
		cloud:  cloud,
		q:      cloud.Queue.CreateQueue("modis-tasks"),
		tokens: sim.NewQueue[uint64](),
		tasks:  make(map[uint64]*Task),
	}
	if ch != nil {
		scc := *ch
		if s != 0 {
			// Scripted (deterministic, host-addressed) events land on
			// shard 0; the stochastic processes run on every shard, each
			// from its own label-forked stream.
			scc.Script = nil
		}
		sh.chaos = chaos.New(cloud, simrand.New(cfg.Seed).Fork("chaos").ForkDomain(s), scc)
		sh.reacqRNG = root.Fork("reacquire")
	}
	return sh
}

// runSharded executes the sharded campaign for its horizon.
func (c *Campaign) runSharded() *Stats {
	eng0 := c.group.Domain(0)
	eng0.Spawn("portal", c.portal)
	eng0.SpawnDaemon("service-manager", c.serviceManager)
	for _, sh := range c.shards {
		sh.start()
	}
	c.group.SetAdaptiveWindow(shardWindowMin, shardWindowMax, shardWindowTarget)
	c.group.RunUntil(time.Duration(c.cfg.Days) * 24 * time.Hour)
	c.mergeShardStats()
	c.checkShardedConservation()
	if c.cfg.DomainStats != nil {
		c.cfg.DomainStats.Add(c.DomainStats())
	}
	return c.Stats
}

// start spawns the shard's actors on its engine: the dispatcher daemon
// (mail → real queue), the worker fleet, and the chaos engine.
func (sh *shard) start() {
	sh.eng.SpawnDaemon(fmt.Sprintf("shard%d/dispatcher", sh.idx), sh.dispatcherLoop)
	sh.procs = make([]*sim.Proc, len(sh.workers))
	sh.current = make([]*Task, len(sh.workers))
	sh.execStart = make([]time.Duration, len(sh.workers))
	for i, vm := range sh.workers {
		vm, i := vm, i
		sh.procs[i] = sh.eng.Spawn(fmt.Sprintf("shard%d/worker%d", sh.idx, i), func(p *sim.Proc) {
			sh.workerLoop(p, vm, i, sh.rng.ForkN("worker", i))
		})
	}
	if sh.chaos != nil {
		sh.vmSlot = make(map[*fabric.VM]int, len(sh.workers))
		for i, vm := range sh.workers {
			sh.vmSlot[vm] = i
		}
		sh.cloud.DC.OnHostDown(sh.onHostDown)
		sh.chaos.Start()
	}
}

// dispatchTask routes a task to the next shard in round-robin order and
// mails it across the window boundary. Coordinator kernel context only; the
// dispatch counter advances in coordinator event order, which the canonical
// inbox drain keeps width-invariant.
func (c *Campaign) dispatchTask(t *Task) {
	sh := c.shards[int(c.dispatchSeq%uint64(len(c.shards)))]
	c.dispatchSeq++
	c.cloud.Engine.Send(sh.eng.DomainIndex(), func() { sh.recvDispatch(t) })
}

// recvDispatch lands a mailed task on the shard (boundary event) and hands
// it to the dispatcher daemon, which owns the storage side of enqueueing.
func (sh *shard) recvDispatch(t *Task) { sh.dispatchQ.Put(t) }

// dispatcherLoop drains mailed tasks into the shard's real Azure queue —
// the storage operation the coordinator cannot perform from an event.
func (sh *shard) dispatcherLoop(p *sim.Proc) {
	for {
		sh.queue.enqueue(p, sh.dispatchQ.Get(p))
	}
}

// sendNote mails a notification to the coordinator. Shard kernel context
// only.
func (sh *shard) sendNote(kind noteKind, t *Task) {
	sh.noteSeq++
	sh.sent[kind]++
	n := taskNote{shard: sh.idx, seq: sh.noteSeq, at: sh.eng.Now(), task: t, kind: kind}
	sh.eng.Send(0, func() { sh.camp.recvNote(n) })
}

// recvNote buffers one boundary arrival and arms the inbox drain at the
// current instant — the same buffer-and-sort discipline the geo layer uses,
// because raw mail order depends on the domain width.
func (c *Campaign) recvNote(n taskNote) {
	c.inbox = append(c.inbox, n)
	if !c.inboxArmed {
		c.inboxArmed = true
		eng := c.cloud.Engine
		eng.Schedule(eng.Now(), c.drainInbox)
	}
}

// drainInbox applies one boundary's notes in the canonical (send time,
// shard, per-shard seq) order — a total order independent of the domain
// width, since the window grid assigns every note to the same boundary at
// every width. Nothing appends to the inbox while it drains: notes only
// arrive as boundary mail, and this boundary's mail has all landed (the
// drain event was scheduled after it, at the same instant).
func (c *Campaign) drainInbox() {
	c.inboxArmed = false
	notes := c.inbox
	c.inbox = c.inbox[:0]
	sort.Slice(notes, func(i, j int) bool {
		if notes[i].at != notes[j].at {
			return notes[i].at < notes[j].at
		}
		if notes[i].shard != notes[j].shard {
			return notes[i].shard < notes[j].shard
		}
		return notes[i].seq < notes[j].seq
	})
	now := c.cloud.Engine.Now()
	for i := range notes {
		n := notes[i]
		notes[i] = taskNote{} // the retained backing array holds no tasks
		c.applied[n.kind]++
		switch n.kind {
		case noteFinish:
			c.applyFinish(now, n.task)
		default: // noteRetry, noteCrash: back through dispatch
			c.dispatchTask(n.task)
		}
	}
}

// applyFinish retires a task at the coordinator — the sharded counterpart
// of finishTask, applied at inbox-drain time.
func (c *Campaign) applyFinish(now time.Duration, task *Task) {
	c.finishes++
	req := task.Request
	req.remaining[task.Type]--
	if req.remaining[task.Type] == 0 {
		c.releaseStageAt(nil, now, req, stageIndex(task.Type)+1)
	}
	req.tasks[task.Type] = nil
}

// storageDo mirrors Campaign.storageDo against the shard's books.
func (sh *shard) storageDo(p *sim.Proc, name string, op func() error) error {
	attempts := 0
	err := sh.retry.Do(p, func() error {
		attempts++
		return op()
	})
	if attempts > 1 {
		sh.stats.StorageRetries += uint64(attempts - 1)
	}
	if err != nil {
		sh.stats.StorageErrors.Inc(name+"/"+string(storerr.CodeOf(err)), 1)
	}
	return err
}

// workerLoop pulls tasks from the shard queue forever; RunUntil bounds the
// campaign, a host crash kills the process.
func (sh *shard) workerLoop(p *sim.Proc, vm *fabric.VM, slot int, rng *simrand.RNG) {
	for {
		task := sh.queue.dequeue(p)
		sh.execute(p, vm, task, rng, slot)
	}
}

// execute runs one task execution on a shard VM — the same model as the
// legacy Campaign.execute, with outcomes tallied in the shard's books and
// the completion/retry verdict mailed to the coordinator instead of applied
// in place.
func (sh *shard) execute(p *sim.Proc, vm *fabric.VM, task *Task, rng *simrand.RNG, slot int) {
	task.Attempts++
	sh.current[slot] = task
	sh.execStart[slot] = p.Now()
	day := int(p.Now() / (24 * time.Hour))
	if day >= len(sh.stats.DailyExecs) {
		day = len(sh.stats.DailyExecs) - 1
	}

	overhead := simrand.Duration(simrand.LogNormalMeanCV(0.4, 0.3), rng)
	noise := simrand.LogNormalMeanCV(1, 0.08).Sample(rng)
	dilated := time.Duration(float64(task.Work) * vm.Host.Slowdown() * noise)
	threshold := time.Duration(sh.camp.cfg.KillMultiple * float64(task.Work) *
		simrand.Uniform{Lo: sh.camp.cfg.DetectLo, Hi: sh.camp.cfg.DetectHi}.Sample(rng))

	var outcome Outcome
	if dilated > threshold {
		p.Sleep(threshold + overhead)
		sh.current[slot] = nil
		outcome = OutcomeVMTimeout
		sh.stats.DailyTimeouts[day]++
		sh.stats.recordKill(threshold, !vm.Host.Degraded())
	} else {
		p.Sleep(dilated + overhead)
		sh.current[slot] = nil
		outcome = sampleOutcome(task.Type, rng)
	}
	if task.lost && sh.chaos != nil && outcome.Completes() {
		sh.chaos.Report().AddWorkRecovered(task.Work)
		task.lost = false
	}
	sh.stats.TaskExecs.Inc(task.Type.String(), 1)
	sh.stats.DailyExecs[day]++
	sh.stats.Outcomes.Inc(string(outcome), 1)
	sev := oplog.Info
	if !outcome.Completes() {
		sev = oplog.Error
	}
	sh.log.Emit(oplog.Record{
		Time:     p.Now(),
		Severity: sev,
		Source:   vm.Name,
		Category: task.Type.String(),
		Event:    string(outcome),
		Detail:   fmt.Sprintf("task %d attempt %d", task.ID, task.Attempts),
	})

	switch {
	case outcome.Retryable() && !outcome.Completes() && task.Attempts < sh.camp.cfg.MaxAttempts:
		sh.stats.Retries++
		sh.sendNote(noteRetry, task)
	default:
		// Completions and terminal failures both retire the task at the
		// coordinator (partial products, as in the real system).
		sh.sendNote(noteFinish, task)
	}
}

// onHostDown is the shard's crash handler (kernel context, fired inside
// CrashHost): kill the worker, mail the interrupted task back to the
// coordinator for re-enqueue — the cross-domain re-enqueue path — and
// schedule the fabric re-acquisition of a replacement.
func (sh *shard) onHostDown(_ *fabric.Host, failed []*fabric.VM) {
	for _, vm := range failed {
		slot, ok := sh.vmSlot[vm]
		if !ok {
			continue // not one of ours (or already handled)
		}
		delete(sh.vmSlot, vm)
		if t := sh.current[slot]; t != nil {
			sh.chaos.Report().AddWorkLost(sh.eng.Now() - sh.execStart[slot])
			t.lost = true
			sh.current[slot] = nil
			sh.stats.CrashAborted++
			sh.sendNote(noteCrash, t)
		}
		if sh.procs[slot] != nil {
			sh.procs[slot].Kill()
			sh.procs[slot] = nil
		}
		sh.respawns++
		gen := sh.respawns
		sh.eng.Spawn(fmt.Sprintf("shard%d/reacquire/%d", sh.idx, gen), func(p *sim.Proc) {
			p.Sleep(simrand.Duration(simrand.Uniform{
				Lo: (10 * time.Minute).Seconds(), Hi: (45 * time.Minute).Seconds()}, sh.reacqRNG))
			nvm := sh.cloud.Controller.ReplacementVM(fabric.Worker, fabric.Small)
			sh.workers[slot] = nvm
			sh.vmSlot[nvm] = slot
			sh.stats.ReplacementVMs++
			rng := sh.rng.ForkN("worker-r", gen)
			sh.procs[slot] = sh.eng.Spawn(fmt.Sprintf("shard%d/worker%d/r%d", sh.idx, slot, gen), func(p2 *sim.Proc) {
				sh.workerLoop(p2, nvm, slot, rng)
			})
		})
	}
}

// mergeShardStats folds every shard's books into the coordinator's Stats,
// in shard-index order — fixed by construction, so merged floats accumulate
// in one deterministic order at every width.
func (c *Campaign) mergeShardStats() {
	for _, sh := range c.shards {
		st := sh.stats
		for _, name := range st.TaskExecs.Names() {
			c.Stats.TaskExecs.Inc(name, st.TaskExecs.Get(name))
		}
		for _, name := range st.Outcomes.Names() {
			c.Stats.Outcomes.Inc(name, st.Outcomes.Get(name))
		}
		for _, name := range st.StorageErrors.Names() {
			c.Stats.StorageErrors.Inc(name, st.StorageErrors.Get(name))
		}
		for d := range st.DailyExecs {
			c.Stats.DailyExecs[d] += st.DailyExecs[d]
			c.Stats.DailyTimeouts[d] += st.DailyTimeouts[d]
		}
		c.Stats.Retries += st.Retries
		c.Stats.WastedSeconds += st.WastedSeconds
		c.Stats.FalseKills += st.FalseKills
		c.Stats.StorageRetries += st.StorageRetries
		c.Stats.CrashAborted += st.CrashAborted
		c.Stats.ReplacementVMs += st.ReplacementVMs
	}
}

// checkShardedConservation closes the sharded campaign's books. Per shard:
// every delivered task is accounted for by an execution, a crash abort, or
// a frozen in-flight execution; and every execution or crash abort emitted
// exactly one note. Campaign-wide: the coordinator never applies more notes
// of a kind than the shards sent — the difference is mail the horizon froze
// in transit.
func (c *Campaign) checkShardedConservation() {
	inv := c.cloud.Engine.Invariants()
	if inv == nil {
		return
	}
	var sent [numNoteKinds]uint64
	for _, sh := range c.shards {
		var inFlight uint64
		for _, t := range sh.current {
			if t != nil {
				inFlight++
			}
		}
		execs := sh.stats.TotalExecs()
		inv.Checkf(sh.queue.delivered == execs+sh.stats.CrashAborted+inFlight,
			"shard %d task conservation: %d delivered != %d executions + %d crash-aborted + %d in flight",
			sh.idx, sh.queue.delivered, execs, sh.stats.CrashAborted, inFlight)
		inv.Checkf(sh.sent[noteFinish]+sh.sent[noteRetry] == execs,
			"shard %d note conservation: %d finish + %d retry notes != %d executions",
			sh.idx, sh.sent[noteFinish], sh.sent[noteRetry], execs)
		inv.Checkf(sh.sent[noteCrash] == sh.stats.CrashAborted,
			"shard %d crash-note conservation: %d crash notes != %d crash-aborted",
			sh.idx, sh.sent[noteCrash], sh.stats.CrashAborted)
		for k := range sent {
			sent[k] += sh.sent[k]
		}
	}
	for k := range sent {
		inv.Checkf(c.applied[k] <= sent[k],
			"note conservation: kind %d applied %d > sent %d", k, c.applied[k], sent[k])
	}
	inv.Checkf(c.finishes == c.applied[noteFinish],
		"finish bookkeeping: %d finishes != %d applied finish notes",
		c.finishes, c.applied[noteFinish])
}
