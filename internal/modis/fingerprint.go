package modis

import (
	"hash/fnv"
	"math"
	"strconv"
)

// Fingerprint condenses every campaign observable into one FNV-64a word —
// the equivalence currency of the domain-sharding work: two runs agree on
// the fingerprint iff they agree on the Table 2 execution mix, the daily
// series, the request books, and every float tally bit for bit. The field
// walk order is fixed, and sample values are hashed sorted, so the word is
// insensitive to float accumulation order only where the model itself is
// (it is not: merges run in shard order precisely so the floats match too).
func (s *Stats) Fingerprint() uint64 {
	h := fnv.New64a()
	buf := make([]byte, 0, 64)
	wu := func(v uint64) {
		buf = strconv.AppendUint(buf[:0], v, 16)
		buf = append(buf, '|')
		h.Write(buf)
	}
	ws := func(v string) {
		h.Write([]byte(v))
		h.Write([]byte{'|'})
	}
	for _, name := range s.TaskExecs.Names() {
		ws(name)
		wu(s.TaskExecs.Get(name))
	}
	for _, name := range s.Outcomes.Names() {
		ws(name)
		wu(s.Outcomes.Get(name))
	}
	for d := range s.DailyExecs {
		wu(s.DailyExecs[d])
		wu(s.DailyTimeouts[d])
	}
	wu(s.DistinctTasks)
	wu(s.Requests)
	wu(s.Retries)
	wu(math.Float64bits(s.WastedSeconds))
	wu(s.FalseKills)
	wu(s.CompletedRequests)
	for _, v := range s.TurnaroundHours.Values() {
		wu(math.Float64bits(v))
	}
	wu(s.StorageRetries)
	for _, name := range s.StorageErrors.Names() {
		ws(name)
		wu(s.StorageErrors.Get(name))
	}
	wu(s.CrashAborted)
	wu(s.ReplacementVMs)
	return h.Sum64()
}
