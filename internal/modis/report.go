package modis

import (
	"azureobs/internal/core"
)

// Anchors compares the campaign's observed task mix and failure taxonomy
// against the published Table 2 shares (percent of total executions) and the
// Fig. 7 claims.
func (s *Stats) Anchors() []core.Anchor {
	total := float64(s.TotalExecs())
	if total == 0 {
		return nil
	}
	taskCounts, outcomeCounts := paperTable2()
	paperTotal := 0.0
	for _, v := range taskCounts {
		paperTotal += float64(v)
	}
	var out []core.Anchor
	for _, ty := range []TaskType{SourceDownload, Aggregation, Reprojection, Reduction} {
		out = append(out, core.Anchor{
			Name:     "task share: " + ty.String(),
			Unit:     "%",
			Paper:    float64(taskCounts[ty]) / paperTotal * 100,
			Measured: float64(s.TaskExecs.Get(ty.String())) / total * 100,
		})
	}
	for _, o := range []Outcome{
		OutcomeSuccess, OutcomeUnknownFailure, OutcomeBlobExists,
		OutcomeNullLog, OutcomeDownloadFailed, OutcomeConnection,
		OutcomeVMTimeout, OutcomeOpTimeout, OutcomeCorruptBlob,
	} {
		out = append(out, core.Anchor{
			Name:     "outcome share: " + string(o),
			Unit:     "%",
			Paper:    float64(outcomeCounts[o]) / paperTotal * 100,
			Measured: float64(s.Outcomes.Get(string(o))) / total * 100,
		})
	}
	fig7 := s.Fig7Series()
	out = append(out, core.Anchor{
		Name: "Fig 7 peak daily timeout share", Unit: "%",
		Paper: 16, Measured: fig7.Max(),
	})
	return out
}
