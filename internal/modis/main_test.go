package modis

import (
	"os"
	"testing"

	"azureobs/internal/sim"
)

// TestMain switches every engine the suite constructs into fail-fast
// invariant checking, so each simulation run in the package doubles as an
// invariant test (event-time monotonicity, resource levels, queue
// conservation, VM state transitions).
func TestMain(m *testing.M) {
	sim.SetDefaultInvariants(true)
	os.Exit(m.Run())
}
