package modis

import (
	"reflect"
	"testing"
	"time"

	"azureobs/internal/chaos"
	"azureobs/internal/core"
	"azureobs/internal/fabric"
)

// shortConfig is a small, fast campaign shared by the chaos tests.
func shortConfig(seed uint64) Config {
	return Config{
		Seed:                seed,
		Days:                5,
		Workers:             30,
		MeanRequestGap:      100 * time.Minute,
		MeanTasksPerRequest: 120,
	}
}

// statsFingerprint captures every campaign observable the isolation and
// equivalence tests compare bit-for-bit.
func statsFingerprint(st *Stats) map[string]uint64 {
	fp := map[string]uint64{
		"execs":    st.TotalExecs(),
		"distinct": st.DistinctTasks,
		"requests": st.Requests,
		"retries":  st.Retries,
		"falsek":   st.FalseKills,
		"complete": st.CompletedRequests,
		"aborted":  st.CrashAborted,
		"repl":     st.ReplacementVMs,
		"sretries": st.StorageRetries,
	}
	for _, name := range st.Outcomes.Names() {
		fp["outcome/"+name] = st.Outcomes.Get(name)
	}
	for _, name := range st.TaskExecs.Names() {
		fp["type/"+name] = st.TaskExecs.Get(name)
	}
	for d, v := range st.DailyExecs {
		fp["day"] = fp["day"]*31 + uint64(d+1)*v
	}
	return fp
}

// A nil chaos config and a zero (disabled) one must produce bit-identical
// campaigns: the chaos streams are label-forked, so merely plumbing the
// config through draws nothing. This is the modis-level half of the trace
// isolation the core golden tests pin for the storage experiments.
func TestChaosDisabledTraceIsolation(t *testing.T) {
	base := NewCampaign(shortConfig(42)).Run()
	cfg := shortConfig(42)
	cfg.Chaos = &chaos.Config{} // present but disabled
	withOff := NewCampaign(cfg).Run()
	if !reflect.DeepEqual(statsFingerprint(base), statsFingerprint(withOff)) {
		t.Fatalf("disabled chaos config perturbed the campaign:\nbase=%v\nwith=%v",
			statsFingerprint(base), statsFingerprint(withOff))
	}
}

// The same chaos campaign must be bit-identical at scheduler widths 1, 2 and
// 4 — the chaosreport scenario cells are independent simulations, so sharding
// them cannot change any result (the modis extension of core's
// TestSchedulerEquivalence).
func TestChaosReportSchedulerEquivalence(t *testing.T) {
	fingerprint := func(r *ChaosReportResult) []map[string]uint64 {
		var out []map[string]uint64
		for _, sc := range r.Scenarios {
			fp := map[string]uint64{
				"execs":   sc.Executions,
				"aborted": sc.CrashAborted,
				"repl":    sc.ReplacementVMs,
				"viol":    sc.Violations,
			}
			if sc.Report != nil {
				for _, cl := range chaos.Classes {
					fp["inj/"+string(cl)] = sc.Report.Injected(cl)
					fp["rep/"+string(cl)] = sc.Report.Repaired(cl)
					fp["mttr/"+string(cl)] = uint64(sc.Report.MTTR(cl))
				}
				fp["killed"] = sc.Report.VMsKilled
				fp["lost"] = uint64(sc.Report.WorkLost)
				fp["recovered"] = uint64(sc.Report.WorkRecovered)
			}
			out = append(out, fp)
		}
		return out
	}
	run := func(workers int) *ChaosReportResult {
		p := core.Proto{Seed: 42, Workers: workers, Scale: core.QuickScale}
		return RunChaosReport(ChaosReportConfigFor(p))
	}
	serial := run(1)
	want := fingerprint(serial)
	wantAnchors := serial.Anchors()
	for _, workers := range []int{2, 4} {
		got := run(workers)
		if !reflect.DeepEqual(fingerprint(got), want) {
			t.Fatalf("chaosreport at %d workers diverged:\n got %v\nwant %v",
				workers, fingerprint(got), want)
		}
		if !reflect.DeepEqual(got.Anchors(), wantAnchors) {
			t.Fatalf("chaosreport anchors at %d workers: %v, want %v",
				workers, got.Anchors(), wantAnchors)
		}
	}
}

// Regression for the crash/monitor double-count hazard: on a fleet with
// degradation effectively off, the timeout monitor never fires (the 4x
// threshold is far above any undilated execution), so a scripted crash
// schedule must produce CrashAborted > 0 while FalseKills and VM-timeout
// outcomes stay exactly zero — a crash-killed execution is re-enqueued, never
// booked as a monitor kill.
func TestCrashAbortNotCountedAsFalseKill(t *testing.T) {
	mkConfig := func() Config {
		cfg := shortConfig(11)
		// Push degradation episodes far past the horizon: every host stays
		// healthy, so any monitor kill would be a false kill by definition.
		cfg.Degradation = &fabric.DegradationConfig{
			MeanInterarrival: 1e6 * time.Hour,
			FracLo:           0.01, FracHi: 0.02,
			SlowLo: 4, SlowHi: 5,
			DurLo: time.Hour, DurHi: 2 * time.Hour,
		}
		return cfg
	}
	// Probe run to learn where the worker fleet lands (placement is
	// deterministic per seed, and the scripted campaign below uses the same
	// seed and fleet size).
	probe := NewCampaign(mkConfig())
	var script []chaos.ScriptEvent
	for i := 0; i < 12; i++ {
		script = append(script, chaos.ScriptEvent{
			At:     time.Duration(6+i*7) * time.Hour,
			Class:  chaos.ClassHostCrash,
			Host:   probe.workers[i].Host.ID,
			Repair: time.Hour,
		})
	}

	cfg := mkConfig()
	cfg.Chaos = &chaos.Config{Script: script}
	camp := NewCampaign(cfg)
	st := camp.Run()

	if got := st.Outcomes.Get(string(OutcomeVMTimeout)); got != 0 {
		t.Fatalf("VM timeouts on a healthy fleet: %d", got)
	}
	if st.FalseKills != 0 {
		t.Fatalf("FalseKills = %d; crash-aborted executions leaked into the monitor books", st.FalseKills)
	}
	if st.CrashAborted == 0 {
		t.Fatal("no crash-aborted executions; the scripted crashes missed every busy worker")
	}
	if st.ReplacementVMs == 0 {
		t.Fatal("no replacement VMs acquired after scripted crashes")
	}
	rep := camp.ChaosReport()
	if rep.Injected(chaos.ClassHostCrash) != uint64(len(script)) {
		t.Fatalf("crashes injected = %d, want %d", rep.Injected(chaos.ClassHostCrash), len(script))
	}
	if rep.WorkLost == 0 {
		t.Fatal("no work recorded lost despite crash-aborted executions")
	}
	if rep.Violations != 0 {
		t.Fatalf("invariant violations: %d", rep.Violations)
	}
}
