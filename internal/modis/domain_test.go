package modis

import (
	"testing"
	"time"

	"azureobs/internal/chaos"
	"azureobs/internal/core/sched"
)

// shardedShortConfig is shortConfig at a given domain width, with chaos
// optionally enabled (an accelerated crash process so a 5-day campaign sees
// several host crashes — the cross-domain re-enqueue path).
func shardedShortConfig(seed uint64, domains int, withChaos bool) Config {
	cfg := shortConfig(seed)
	cfg.Domains = domains
	if withChaos {
		cfg.Chaos = &chaos.Config{HostCrash: chaos.Process{
			MeanInterarrival: 12 * time.Hour,
			RepairLo:         15 * time.Minute, RepairHi: 2 * time.Hour,
		}}
	}
	return cfg
}

// TestCampaignDomainEquivalence is the tentpole pin: the sharded campaign
// is bit-identical at every domain width, whether or not its cells are
// themselves sharded over scheduler workers, with chaos on and off. Each
// cell runs with the invariant harness fail-fast, so the task- and
// note-conservation books are also closed at every width.
func TestCampaignDomainEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-campaign equivalence matrix")
	}
	widths := []int{1, 2, 4}
	for _, withChaos := range []bool{false, true} {
		var want uint64
		var wantMap map[string]uint64
		for _, schedWorkers := range []int{1, 4} {
			pool := sched.New(schedWorkers)
			type cell struct {
				fp      uint64
				fpMap   map[string]uint64
				aborted uint64
				viol    uint64
			}
			cells := sched.Map(pool, len(widths), func(i int) cell {
				camp := NewCampaign(shardedShortConfig(42, widths[i], withChaos))
				camp.EnableInvariants(true)
				st := camp.Run()
				return cell{st.Fingerprint(), statsFingerprint(st), st.CrashAborted, camp.InvariantViolations()}
			})
			for i, c := range cells {
				if want == 0 {
					want, wantMap = c.fp, c.fpMap
				}
				if c.fp != want {
					t.Errorf("chaos=%v sched=%d domains=%d: fingerprint %#x != reference %#x\ncell=%v\nref=%v",
						withChaos, schedWorkers, widths[i], c.fp, want, c.fpMap, wantMap)
				}
				if c.viol != 0 {
					t.Errorf("chaos=%v sched=%d domains=%d: %d invariant violations",
						withChaos, schedWorkers, widths[i], c.viol)
				}
				if withChaos && c.aborted == 0 {
					t.Errorf("chaos=%v sched=%d domains=%d: no crash-aborted executions — the cross-domain re-enqueue path was not exercised",
						withChaos, schedWorkers, widths[i])
				}
			}
		}
	}
}

// A sharded campaign must produce a plausible Table 2: every stage executes,
// most executions succeed, and requests complete.
func TestShardedCampaignShape(t *testing.T) {
	camp := NewCampaign(shardedShortConfig(7, 4, false))
	camp.EnableInvariants(true)
	st := camp.Run()
	if st.TotalExecs() == 0 {
		t.Fatal("sharded campaign executed no tasks")
	}
	for _, ty := range []TaskType{SourceDownload, Reprojection, Aggregation, Reduction} {
		if st.TaskExecs.Get(ty.String()) == 0 {
			t.Errorf("no %s executions", ty)
		}
	}
	if st.SuccessShare() < 0.55 || st.SuccessShare() > 0.8 {
		t.Errorf("success share %.3f outside the Table 2 band (~0.66)", st.SuccessShare())
	}
	if st.CompletedRequests == 0 {
		t.Error("no requests completed")
	}
	if camp.EffectiveDomains() != 4 {
		t.Errorf("EffectiveDomains = %d, want 4", camp.EffectiveDomains())
	}
	if ds := camp.DomainStats(); ds.Rounds == 0 || ds.Domains != 4 {
		t.Errorf("DomainStats = %+v, want 4 domains with rounds > 0", ds)
	}
	if n := len(camp.RecentRecords()); n == 0 {
		t.Error("RecentRecords empty for a sharded campaign")
	}
}

// Requesting more domains than shards clamps to the shard count, and the
// clamp is surfaced (no silent caps).
func TestShardedDomainClamp(t *testing.T) {
	cfg := shardedShortConfig(42, 16, false)
	camp := NewCampaign(cfg)
	if got := camp.RequestedDomains(); got != 16 {
		t.Errorf("RequestedDomains = %d, want 16", got)
	}
	if got := camp.EffectiveDomains(); got != defaultShards {
		t.Errorf("EffectiveDomains = %d, want %d (clamped to shard count)", got, defaultShards)
	}
}
