package modis

import (
	"time"

	"azureobs/internal/core/sched"
)

// KillAblationPoint summarises one campaign run at a given kill multiple.
type KillAblationPoint struct {
	KillMultiple float64
	// Timeouts is the number of executions killed by the monitor.
	Timeouts uint64
	// FalseKills counts kills of executions on healthy hosts (work the
	// monitor threw away even though it would have finished normally).
	FalseKills uint64
	// WastedHours is compute burned by killed executions.
	WastedHours float64
	// TotalExecs is the campaign's execution count.
	TotalExecs uint64
}

// RunKillAblation evaluates the Section 5.2 suggestion that "a good task
// execution history may allow even tighter bounds than the 4-5x we used in
// order to minimize wasted time": it runs identical campaigns at several
// kill multiples and reports the waste/false-kill trade-off. Tighter bounds
// kill degraded executions sooner (less wasted compute per kill) but begin
// killing healthy stragglers; looser bounds waste more per kill.
//
// Each multiple runs an identical, independently-seeded campaign, so the
// points shard over workers scheduler workers (≤1 = serial) with results
// identical at any width.
func RunKillAblation(base Config, multiples []float64, workers int) []KillAblationPoint {
	if multiples == nil {
		multiples = []float64{2, 3, 4, 6}
	}
	pool := sched.New(workers)
	return sched.Map(pool, len(multiples), func(i int) KillAblationPoint {
		cfg := base
		cfg.KillMultiple = multiples[i]
		st := NewCampaign(cfg).Run()
		return KillAblationPoint{
			KillMultiple: multiples[i],
			Timeouts:     st.Outcomes.Get(string(OutcomeVMTimeout)),
			FalseKills:   st.FalseKills,
			WastedHours:  st.WastedSeconds / 3600,
			TotalExecs:   st.TotalExecs(),
		}
	})
}

// recordKill accounts a killed execution for the ablation metrics.
func (s *Stats) recordKill(threshold time.Duration, healthyHost bool) {
	s.WastedSeconds += threshold.Seconds()
	if healthyHost {
		s.FalseKills++
	}
}
