package modis

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"azureobs/internal/azure"
	"azureobs/internal/chaos"
	"azureobs/internal/fabric"
	"azureobs/internal/metrics"
	"azureobs/internal/oplog"
	"azureobs/internal/sim"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/queuesvc"
	"azureobs/internal/storage/reqpath"
	"azureobs/internal/storage/storerr"
	"azureobs/internal/storage/tablesvc"
)

// Config parameterises a ModisAzure campaign. Zero fields take the
// paper-scale defaults (Feb-Sep 2010: 242 days, ~200 workers, ~3.05M task
// executions).
type Config struct {
	Seed    uint64
	Days    int
	Workers int

	// MeanRequestGap is the mean portal inter-arrival time.
	MeanRequestGap time.Duration
	// MeanTasksPerRequest is the mean reprojection task count per request;
	// the other stages scale from it (see stage ratios below).
	MeanTasksPerRequest float64

	// KillMultiple is the timeout monitor threshold in multiples of the
	// task type's mean execution time (paper: 4x; effective kill happened
	// at 4.5-6x due to detection latency, modelled by DetectLo/Hi).
	KillMultiple       float64
	DetectLo, DetectHi float64

	// MaxAttempts caps executions per task including retries.
	MaxAttempts int

	// Degradation overrides the host-degradation episode process.
	Degradation *fabric.DegradationConfig

	// StorageFaults injects the same transient-fault mix into every storage
	// service the campaign touches (tables, queues, blobs) — the uniform
	// fault campaign. The campaign's storage calls run under the default
	// retry policy, so Table 2-style transient errors are mostly absorbed;
	// terminal failures are tallied in Stats.StorageErrors.
	StorageFaults reqpath.FaultConfig

	// Chaos, when non-nil and enabled, runs a whole-datacenter fault
	// campaign (host crashes, degradation windows, rack partitions, storage
	// outages) alongside the workload. The campaign survives via the same
	// retry and timeout-monitor machinery the paper's §5 study credits:
	// crashed workers' in-flight tasks are re-enqueued, and the fabric
	// re-acquires replacement VMs after a delay. The chaos streams are
	// label-forked, so a nil/disabled config leaves every trace
	// bit-identical.
	Chaos *chaos.Config

	// Domains ≥ 1 runs the campaign sharded onto a sim.Domains group of
	// that width (clamped to Shards; the clamp is surfaced through
	// RequestedDomains/EffectiveDomains, never silent). Zero keeps the
	// legacy single-engine path, byte-identical to previous releases.
	// Sharded results are bit-identical at every width — shard identity is
	// fixed by Shards, not Domains — but differ from the legacy path,
	// whose queue is a single serial object.
	Domains int

	// Shards is the fixed partition count for sharded runs (default 8):
	// workers, their VMs/hosts/degradation streams, and the task queue
	// split into this many shards, shard s running on domain s mod
	// Domains. Changing Shards changes the trace; changing Domains does
	// not.
	Shards int

	// DomainStats, when non-nil, accumulates the coordinator's
	// rounds/mail/busy accounting for sharded runs (bench plumbing).
	DomainStats *sim.DomainAccum
}

// DefaultConfig is the paper-scale campaign.
func DefaultConfig() Config {
	return Config{
		Seed:                42,
		Days:                242,
		Workers:             200,
		MeanRequestGap:      100 * time.Minute,
		MeanTasksPerRequest: 450,
		KillMultiple:        4,
		DetectLo:            1.1,
		DetectHi:            1.5,
		MaxAttempts:         5,
	}
}

// Stage ratios relative to a request's reprojection task count, derived from
// Table 2's execution mix after removing retry inflation (see DESIGN.md).
const (
	downloadPerReproj    = 0.089
	aggregationPerReproj = 0.0055
	reductionPerReproj   = 0.76
)

// modisDegradation returns the episode process calibrated for Fig. 7: rare
// episodes (about a dozen over the campaign) that strike 2-35% of hosts with
// a 4-6.5x slowdown for 2-18 h, yielding an overall VM-timeout share of
// ~0.17% of executions and daily spikes up to ~16%.
func modisDegradation() fabric.DegradationConfig {
	return fabric.DegradationConfig{
		MeanInterarrival: 320 * time.Hour,
		FracLo:           0.02,
		FracHi:           0.42,
		SlowLo:           4.0,
		SlowHi:           7.0,
		DurLo:            3 * time.Hour,
		DurHi:            22 * time.Hour,
	}
}

// Stats aggregates a campaign's observable outcomes.
type Stats struct {
	TaskExecs *metrics.CounterSet // executions per task type
	Outcomes  *metrics.CounterSet // executions per Table 2 outcome class

	DailyExecs    []uint64
	DailyTimeouts []uint64

	DistinctTasks uint64
	Requests      uint64
	Retries       uint64

	// Kill-ablation metrics: compute burned by monitor-killed executions
	// and kills of executions running on healthy hosts.
	WastedSeconds float64
	FalseKills    uint64

	// CompletedRequests counts requests whose final stage drained (the
	// user-notification event), and TurnaroundHours their submit-to-done
	// latency distribution.
	CompletedRequests uint64
	TurnaroundHours   *metrics.Sample

	// StorageRetries counts storage-operation attempts beyond the first
	// (the retry mechanism of Section 5.2 absorbing transient faults);
	// StorageErrors tallies operations that still failed after retrying,
	// keyed by "op/code".
	StorageRetries uint64
	StorageErrors  *metrics.CounterSet

	// CrashAborted counts executions cut short because a host crash killed
	// the worker mid-task. These are not monitor kills: they never record an
	// outcome, never touch FalseKills, and the interrupted task is
	// re-enqueued by the crash handler.
	CrashAborted uint64
	// ReplacementVMs counts workers the fabric re-acquired after crashes.
	ReplacementVMs uint64
}

// TotalExecs returns the total task execution count.
func (s *Stats) TotalExecs() uint64 { return s.TaskExecs.Total() }

// SuccessShare returns the fraction of executions recorded as Success.
func (s *Stats) SuccessShare() float64 {
	return float64(s.Outcomes.Get(string(OutcomeSuccess))) / float64(s.TotalExecs())
}

// TimeoutShare returns the fraction of executions killed by the VM timeout.
func (s *Stats) TimeoutShare() float64 {
	return float64(s.Outcomes.Get(string(OutcomeVMTimeout))) / float64(s.TotalExecs())
}

// Fig7Series returns the daily percentage of executions killed by the VM
// timeout (days without executions report 0).
func (s *Stats) Fig7Series() *metrics.TimeSeries {
	ts := &metrics.TimeSeries{}
	for d := range s.DailyExecs {
		pct := 0.0
		if s.DailyExecs[d] > 0 {
			pct = float64(s.DailyTimeouts[d]) / float64(s.DailyExecs[d]) * 100
		}
		ts.Add(time.Duration(d)*24*time.Hour, pct)
	}
	return ts
}

// Campaign is one ModisAzure deployment run.
type Campaign struct {
	cfg   Config
	cloud *azure.Cloud
	rng   *simrand.RNG
	Stats *Stats

	// Log receives one record per task execution (the Section 6.3
	// "logging and monitoring infrastructure"); Analyzer derives the
	// Table 2 / Fig. 7 views from that stream, as the paper's authors did
	// from their production logs.
	Log      *oplog.Log
	Analyzer *oplog.TaxonomyAnalyzer

	// retry wraps every storage call the campaign makes; with fault
	// injection off it never draws or sleeps, keeping fault-free campaigns
	// bit-identical.
	retry azure.RetryPolicy

	queue   *taskQueue
	workers []*fabric.VM

	// Request intake (Fig. 6): portal → request table + service queue →
	// service manager.
	reqQueue  *queuesvc.Queue
	reqTokens *sim.Queue[*Request]

	nextTaskID uint64
	nextReqID  uint64

	// Chaos machinery (all nil/empty when cfg.Chaos is off). procs, current
	// and execStart are indexed by worker slot; vmSlot maps a live worker VM
	// back to its slot so a host-crash callback can find who died.
	chaos     *chaos.Engine
	procs     []*sim.Proc
	current   []*Task
	execStart []time.Duration
	vmSlot    map[*fabric.VM]int
	reacqRNG  *simrand.RNG
	respawns  int

	// Conservation counters (checked against the invariant harness at the
	// end of Run): finishes counts finishTask calls (legacy mode) or
	// applied finish notes (sharded mode).
	finishes uint64

	// Sharded mode (cfg.Domains ≥ 1). The coordinator — portal, service
	// manager, request state, task dispatch — lives on domain 0 with its
	// own cloud (c.cloud); workers, their VMs/hosts/degradation streams
	// and the task queue split into cfg.Shards shards, shard s on domain
	// s mod width. All cross-shard traffic is boundary mail: dispatches
	// outbound, completion/retry/crash notes inbound, drained from inbox
	// in the canonical (send time, shard, per-shard seq) order so every
	// coordinator decision is independent of the domain width.
	group            *sim.Domains
	shards           []*shard
	requestedDomains int
	inbox            []taskNote
	inboxArmed       bool
	dispatchSeq      uint64
	applied          [numNoteKinds]uint64
}

// taskQueue couples the real Azure queue service with an instant wakeup
// channel so idle workers do not busy-poll across months of simulated time.
// (The production system polled; the token queue reproduces the same FIFO
// delivery without 10^8 empty polls.) do is the owner's storage-operation
// wrapper (the campaign's in legacy mode, a shard's in sharded mode), so
// retries and errors are tallied against the right books.
type taskQueue struct {
	do     func(p *sim.Proc, name string, op func() error) error
	cloud  *azure.Cloud
	q      *queuesvc.Queue
	tokens *sim.Queue[uint64]
	tasks  map[uint64]*Task

	// delivered counts tasks handed to workers — one side of the
	// delivered == executions + crash-aborted + in-flight conservation
	// equation checked at the end of a run.
	delivered uint64
}

// withDefaults fills zero fields from DefaultConfig and normalises the
// sharding knobs.
func (cfg Config) withDefaults() Config {
	def := DefaultConfig()
	if cfg.Days == 0 {
		cfg.Days = def.Days
	}
	if cfg.Workers == 0 {
		cfg.Workers = def.Workers
	}
	if cfg.MeanRequestGap == 0 {
		cfg.MeanRequestGap = def.MeanRequestGap
	}
	if cfg.MeanTasksPerRequest == 0 {
		cfg.MeanTasksPerRequest = def.MeanTasksPerRequest
	}
	if cfg.KillMultiple == 0 {
		cfg.KillMultiple = def.KillMultiple
	}
	if cfg.DetectLo == 0 {
		cfg.DetectLo = def.DetectLo
	}
	if cfg.DetectHi == 0 {
		cfg.DetectHi = def.DetectHi
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = def.MaxAttempts
	}
	if cfg.Domains > 0 && cfg.Shards == 0 {
		cfg.Shards = defaultShards
	}
	return cfg
}

// newCampaignStats allocates a Stats block with Table 2's row order
// pre-registered, so reports are stable even for classes that never occur
// at small scale.
func newCampaignStats(days int) *Stats {
	st := &Stats{
		TaskExecs:       metrics.NewCounterSet(),
		Outcomes:        metrics.NewCounterSet(),
		DailyExecs:      make([]uint64, days+1),
		DailyTimeouts:   make([]uint64, days+1),
		TurnaroundHours: metrics.NewSample(4096),
		StorageErrors:   metrics.NewCounterSet(),
	}
	for _, ty := range []TaskType{SourceDownload, Aggregation, Reprojection, Reduction} {
		st.TaskExecs.Inc(ty.String(), 0)
	}
	_, oc := paperTable2()
	for _, o := range table2OutcomeOrder() {
		if _, ok := oc[o]; ok {
			st.Outcomes.Inc(string(o), 0)
		}
	}
	st.Outcomes.Inc(string(OutcomeUserCode), 0)
	return st
}

// NewCampaign assembles a campaign.
func NewCampaign(cfg Config) *Campaign {
	cfg = cfg.withDefaults()
	if cfg.Domains > 0 {
		return newShardedCampaign(cfg)
	}

	ccfg := azure.Config{Seed: cfg.Seed, Faults: cfg.StorageFaults}
	ccfg.Fabric = fabric.DefaultConfig()
	ccfg.Fabric.Degradation = true
	dcfg := modisDegradation()
	if cfg.Degradation != nil {
		dcfg = *cfg.Degradation
	}
	ccfg.Fabric.DegradationConfig = &dcfg
	cloud := azure.NewCloud(ccfg)

	c := &Campaign{
		cfg:      cfg,
		cloud:    cloud,
		rng:      simrand.New(cfg.Seed).Fork("modis"),
		Stats:    newCampaignStats(cfg.Days),
		workers:  cloud.Controller.ReadyFleet(cfg.Workers, fabric.Worker, fabric.Small),
		Log:      oplog.New(256),
		Analyzer: oplog.NewTaxonomyAnalyzer(string(OutcomeVMTimeout)),
	}
	c.retry = azure.DefaultRetryPolicy().WithJitter(0.5, c.rng.Fork("retry"))
	c.Log.Subscribe(c.Analyzer.Sink())
	c.queue = &taskQueue{
		do:     c.storageDo,
		cloud:  cloud,
		q:      cloud.Queue.CreateQueue("modis-tasks"),
		tokens: sim.NewQueue[uint64](),
		tasks:  make(map[uint64]*Task),
	}
	// The request path of Fig. 6: the portal stores each request in an
	// Azure table and enqueues it on a service queue watched by the
	// service manager.
	cloud.Table.CreateTable("modis-requests")
	c.reqQueue = cloud.Queue.CreateQueue("modis-requests")
	c.reqTokens = sim.NewQueue[*Request]()
	if cfg.Chaos != nil && cfg.Chaos.Enabled() {
		ch := *cfg.Chaos
		if ch.Horizon == 0 {
			ch.Horizon = time.Duration(cfg.Days) * 24 * time.Hour
		}
		// The chaos root is forked from the campaign seed by label, exactly
		// like every other subsystem stream: with chaos off, nothing below
		// draws from it and every other stream is untouched.
		c.chaos = chaos.New(cloud, simrand.New(cfg.Seed).Fork("chaos"), ch)
		c.reacqRNG = c.rng.Fork("reacquire")
	}
	return c
}

// table2OutcomeOrder lists the outcome classes in Table 2's printed order.
func table2OutcomeOrder() []Outcome {
	return []Outcome{
		OutcomeSuccess, OutcomeUnknownFailure, OutcomeBlobExists,
		OutcomeNullLog, OutcomeDownloadFailed, OutcomeConnection,
		OutcomeVMTimeout, OutcomeOpTimeout, OutcomeCorruptBlob,
		OutcomeServerBusy, OutcomeBlobReadFail, OutcomeNoSourceBlob,
		OutcomeUnreadableFile, OutcomeBadImage, OutcomeTransport,
		OutcomeInternalClient, OutcomeOutOfDisk,
	}
}

// Cloud exposes the underlying cloud (tests and the CLI use it). In sharded
// mode this is the coordinator's cloud on domain 0.
func (c *Campaign) Cloud() *azure.Cloud { return c.cloud }

// ChaosReport returns the fault-campaign taxonomy, or nil when chaos is off.
// A sharded campaign's report is the shard reports merged in shard order.
func (c *Campaign) ChaosReport() *chaos.Report {
	if c.group != nil {
		if c.shards[0].chaos == nil {
			return nil
		}
		rep := chaos.NewReport()
		for _, sh := range c.shards {
			rep.Merge(sh.chaos.Report())
		}
		rep.Violations = c.InvariantViolations()
		return rep
	}
	if c.chaos == nil {
		return nil
	}
	return c.chaos.Report()
}

// EnableInvariants turns on the kernel invariant harness for every engine
// the campaign runs on (one in legacy mode, every domain in sharded mode).
// failFast=false records violations instead of panicking.
func (c *Campaign) EnableInvariants(failFast bool) {
	if c.group == nil {
		c.cloud.Engine.EnableInvariants(failFast)
		return
	}
	for i := 0; i < c.group.N(); i++ {
		c.group.Domain(i).EnableInvariants(failFast)
	}
}

// InvariantViolations sums recorded invariant violations across the
// campaign's engines (zero when the harness was never enabled).
func (c *Campaign) InvariantViolations() uint64 {
	if c.group == nil {
		if inv := c.cloud.Engine.Invariants(); inv != nil {
			return inv.ViolationCount()
		}
		return 0
	}
	var n uint64
	for i := 0; i < c.group.N(); i++ {
		if inv := c.group.Domain(i).Invariants(); inv != nil {
			n += inv.ViolationCount()
		}
	}
	return n
}

// RequestedDomains and EffectiveDomains surface the sharding clamp: a
// request for more domains than shards is cut to the shard count (a domain
// with no shard would idle every round), and callers are expected to report
// the difference rather than let it pass silently.
func (c *Campaign) RequestedDomains() int { return c.requestedDomains }

// EffectiveDomains returns the domain width the campaign actually runs at
// (0 in legacy mode).
func (c *Campaign) EffectiveDomains() int {
	if c.group == nil {
		return 0
	}
	return c.group.N()
}

// DomainStats returns the sharded coordinator's accounting (zero in legacy
// mode). Valid after Run.
func (c *Campaign) DomainStats() sim.DomainStats {
	if c.group == nil {
		return sim.DomainStats{}
	}
	s := c.group.Stats()
	s.Requested = c.requestedDomains
	return s
}

// RecentRecords returns the tail of the campaign's execution log — the ring
// contents in legacy mode, the shard rings merged by (time, shard) in
// sharded mode.
func (c *Campaign) RecentRecords() []oplog.Record {
	if c.group == nil {
		return c.Log.Recent()
	}
	var out []oplog.Record
	for _, sh := range c.shards {
		out = append(out, sh.log.Recent()...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// Run executes the campaign for its configured horizon.
func (c *Campaign) Run() *Stats {
	if c.group != nil {
		return c.runSharded()
	}
	c.cloud.Engine.Spawn("portal", c.portal)
	c.cloud.Engine.SpawnDaemon("service-manager", c.serviceManager)
	c.procs = make([]*sim.Proc, len(c.workers))
	c.current = make([]*Task, len(c.workers))
	c.execStart = make([]time.Duration, len(c.workers))
	for i, vm := range c.workers {
		vm, i := vm, i
		c.procs[i] = c.cloud.Engine.Spawn(fmt.Sprintf("worker%d", i), func(p *sim.Proc) {
			c.workerLoop(p, vm, i, c.rng.ForkN("worker", i))
		})
	}
	if c.chaos != nil {
		c.vmSlot = make(map[*fabric.VM]int, len(c.workers))
		for i, vm := range c.workers {
			c.vmSlot[vm] = i
		}
		c.cloud.DC.OnHostDown(c.onHostDown)
		c.chaos.Start()
	}
	c.cloud.Engine.RunUntil(time.Duration(c.cfg.Days) * 24 * time.Hour)
	c.checkConservation()
	if c.chaos != nil {
		c.chaos.Report().Violations = c.cloud.Engine.Invariants().ViolationCount()
	}
	return c.Stats
}

// checkConservation closes the campaign's books against the invariant
// harness: every task handed to a worker is accounted for by a recorded
// execution, a crash abort (re-enqueued), or an in-flight execution frozen by
// the horizon; and every recorded execution either finished its task or
// retried it.
func (c *Campaign) checkConservation() {
	inv := c.cloud.Engine.Invariants()
	if inv == nil {
		return
	}
	var inFlight uint64
	for _, t := range c.current {
		if t != nil {
			inFlight++
		}
	}
	execs := c.Stats.TotalExecs()
	inv.Checkf(c.queue.delivered == execs+c.Stats.CrashAborted+inFlight,
		"task conservation: %d delivered != %d executions + %d crash-aborted + %d in flight",
		c.queue.delivered, execs, c.Stats.CrashAborted, inFlight)
	inv.Checkf(execs == c.finishes+c.Stats.Retries,
		"execution conservation: %d executions != %d finishes + %d retries",
		execs, c.finishes, c.Stats.Retries)
}

// onHostDown is the campaign's crash handler (kernel context, fired inside
// CrashHost). For each failed worker VM it kills the worker process,
// re-enqueues whatever task it was executing (crediting the lost work to the
// chaos report), and schedules the fabric re-acquisition of a replacement
// worker.
func (c *Campaign) onHostDown(_ *fabric.Host, failed []*fabric.VM) {
	for _, vm := range failed {
		slot, ok := c.vmSlot[vm]
		if !ok {
			continue // not one of ours (or already handled)
		}
		delete(c.vmSlot, vm)
		if t := c.current[slot]; t != nil {
			c.chaos.Report().AddWorkLost(c.cloud.Engine.Now() - c.execStart[slot])
			t.lost = true
			c.current[slot] = nil
			c.Stats.CrashAborted++
			// Re-enqueueing needs a process (it is a storage operation);
			// the monitor-side reclaim runs as its own short-lived proc.
			c.cloud.Engine.Spawn(fmt.Sprintf("reclaim/%d", t.ID), func(p *sim.Proc) {
				c.queue.enqueue(p, t)
			})
		}
		if c.procs[slot] != nil {
			c.procs[slot].Kill()
			c.procs[slot] = nil
		}
		c.respawns++
		gen := c.respawns
		c.cloud.Engine.Spawn(fmt.Sprintf("reacquire/%d", gen), func(p *sim.Proc) {
			// Fabric re-acquisition delay: the gap the paper observed
			// between a node failure and its capacity coming back.
			p.Sleep(simrand.Duration(simrand.Uniform{
				Lo: (10 * time.Minute).Seconds(), Hi: (45 * time.Minute).Seconds()}, c.reacqRNG))
			nvm := c.cloud.Controller.ReplacementVM(fabric.Worker, fabric.Small)
			c.workers[slot] = nvm
			c.vmSlot[nvm] = slot
			c.Stats.ReplacementVMs++
			rng := c.rng.ForkN("worker-r", gen)
			c.procs[slot] = c.cloud.Engine.Spawn(fmt.Sprintf("worker%d/r%d", slot, gen), func(p2 *sim.Proc) {
				c.workerLoop(p2, nvm, slot, rng)
			})
		})
	}
}

// portal generates user requests for the campaign horizon.
func (c *Campaign) portal(p *sim.Proc) {
	gap := simrand.Exponential{Rate: 1 / c.cfg.MeanRequestGap.Seconds()}
	sizeDist := simrand.LogNormalMeanCV(c.cfg.MeanTasksPerRequest, 1.0)
	rng := c.rng.Fork("portal")
	horizon := time.Duration(c.cfg.Days) * 24 * time.Hour
	for {
		next := simrand.Duration(gap, rng)
		if p.Now()+next >= horizon {
			return
		}
		p.Sleep(next)
		c.submitRequest(p, rng, sizeDist)
	}
}

// submitRequest performs the portal's side of Fig. 6: persist the request
// in the Azure table, enqueue it on the service queue, and wake the service
// manager.
func (c *Campaign) submitRequest(p *sim.Proc, rng *simrand.RNG, sizeDist simrand.Dist) {
	c.nextReqID++
	req := &Request{ID: c.nextReqID, submitted: p.Now()}
	nReproj := int(sizeDist.Sample(rng))
	if nReproj < 1 {
		nReproj = 1
	}
	req.planned = nReproj
	reqEntity := &tablesvc.Entity{
		PartitionKey: "requests",
		RowKey:       fmt.Sprintf("req-%08d", req.ID),
		Props: map[string]tablesvc.Prop{
			"Reprojections": tablesvc.IntProp(int64(nReproj)),
			"Status":        tablesvc.StrProp("submitted"),
		},
	}
	if err := c.storageDo(p, "table.Insert", func() error {
		return c.cloud.Table.Insert(p, "modis-requests", reqEntity)
	}); err != nil {
		return // request lost at the portal; tallied in StorageErrors
	}
	if err := c.storageDo(p, "queue.Add", func() error {
		_, err := c.cloud.Queue.Add(p, c.reqQueue, fmt.Sprintf("%d", req.ID), 512)
		return err
	}); err != nil {
		return
	}
	c.reqTokens.Put(req)
	c.Stats.Requests++
}

// serviceManager drains the service queue, expanding each request into its
// staged task set and releasing the first stage — the "service manager
// which manages the execution of the requests and their associated tasks"
// of Section 5.1.
func (c *Campaign) serviceManager(p *sim.Proc) {
	rng := c.rng.Fork("manager")
	for {
		req := c.reqTokens.Get(p)
		var msg *queuesvc.Message
		var rcpt queuesvc.Receipt
		var ok bool
		if err := c.storageDo(p, "queue.Receive", func() error {
			var err error
			msg, rcpt, ok, err = c.cloud.Queue.Receive(p, c.reqQueue, 2*time.Hour)
			return err
		}); err != nil {
			continue // request stranded in the service queue; tallied
		}
		if !ok {
			continue
		}
		// A failed delete leaves the message to reappear after its
		// visibility window; the request itself still proceeds.
		c.storageDo(p, "queue.Delete", func() error {
			return c.cloud.Queue.Delete(p, c.reqQueue, rcpt)
		})
		_ = msg
		c.expandRequest(p, req, rng)
	}
}

// expandRequest turns a request into staged tasks and releases the first
// stage.
func (c *Campaign) expandRequest(p *sim.Proc, req *Request, rng *simrand.RNG) {
	nReproj := req.planned
	counts := [numTaskTypes]int{}
	counts[SourceDownload] = int(float64(nReproj)*downloadPerReproj + rng.Float64())
	counts[Aggregation] = int(float64(nReproj)*aggregationPerReproj + rng.Float64())
	counts[Reprojection] = nReproj
	counts[Reduction] = int(float64(nReproj)*reductionPerReproj + rng.Float64())
	wrng := c.rng.ForkN("work", int(req.ID))
	for _, ty := range stageOrder() {
		work := nominalWork(ty)
		for i := 0; i < counts[ty]; i++ {
			c.nextTaskID++
			t := &Task{
				ID:      c.nextTaskID,
				Type:    ty,
				Request: req,
				Work:    simrand.Duration(work, wrng),
			}
			req.tasks[ty] = append(req.tasks[ty], t)
		}
		req.remaining[ty] = counts[ty]
		c.Stats.DistinctTasks += uint64(counts[ty])
	}
	c.releaseStage(p, req, 0)
}

// stageOrder is the pipeline order: collection precedes reprojection, which
// precedes aggregation, which precedes reduction (Section 5.1).
func stageOrder() []TaskType {
	return []TaskType{SourceDownload, Reprojection, Aggregation, Reduction}
}

// releaseStage enqueues the first non-empty stage at or after idx. When no
// stage remains the request is complete: the user is notified and the
// turnaround recorded ("upon completion ... an email is sent to the user",
// Section 5.1).
func (c *Campaign) releaseStage(p *sim.Proc, req *Request, idx int) {
	c.releaseStageAt(p, p.Now(), req, idx)
}

// releaseStageAt is releaseStage with the clock passed explicitly: sharded
// completions apply at the coordinator's inbox drain, an event with no
// process (p is nil there; sharded release dispatches mail, which needs no
// process either).
func (c *Campaign) releaseStageAt(p *sim.Proc, now time.Duration, req *Request, idx int) {
	order := stageOrder()
	for ; idx < len(order); idx++ {
		ty := order[idx]
		if req.remaining[ty] > 0 {
			for _, t := range req.tasks[ty] {
				if c.group != nil {
					c.dispatchTask(t)
				} else {
					c.queue.enqueue(p, t)
				}
			}
			return
		}
	}
	c.Stats.CompletedRequests++
	c.Stats.TurnaroundHours.Add((now - req.submitted).Hours())
}

// storageDo runs one storage operation under the campaign's retry policy —
// the "robust retry mechanisms" the paper found indispensable (Section 5.2)
// in place of the original panic-on-error plumbing. Retries and terminal
// failures are tallied; the terminal error (nil on success) is returned so
// call sites can shed the affected work instead of crashing the campaign.
func (c *Campaign) storageDo(p *sim.Proc, name string, op func() error) error {
	attempts := 0
	err := c.retry.Do(p, func() error {
		attempts++
		return op()
	})
	if attempts > 1 {
		c.Stats.StorageRetries += uint64(attempts - 1)
	}
	if err != nil {
		c.Stats.StorageErrors.Inc(name+"/"+string(storerr.CodeOf(err)), 1)
	}
	return err
}

// stageIndex returns a type's position in the pipeline order.
func stageIndex(ty TaskType) int {
	for i, t := range stageOrder() {
		if t == ty {
			return i
		}
	}
	return -1
}

// workerLoop pulls tasks forever; RunUntil bounds the campaign. A host crash
// kills the loop's process; the crash handler respawns it on a replacement
// VM with a fresh stream.
func (c *Campaign) workerLoop(p *sim.Proc, vm *fabric.VM, id int, rng *simrand.RNG) {
	for {
		task := c.queue.dequeue(p)
		c.execute(p, vm, task, rng, id)
	}
}

// execute runs one task execution on a VM and records its outcome.
func (c *Campaign) execute(p *sim.Proc, vm *fabric.VM, task *Task, rng *simrand.RNG, id int) {
	task.Attempts++
	// The in-flight marker is how the crash handler knows what this worker
	// was doing; it is cleared the instant the execution sleep returns, so a
	// monitor kill and a host crash landing on the same execution can never
	// both account for it (the FalseKills double-count hazard).
	c.current[id] = task
	c.execStart[id] = p.Now()
	day := int(p.Now() / (24 * time.Hour))
	if day >= len(c.Stats.DailyExecs) {
		day = len(c.Stats.DailyExecs) - 1
	}

	// Status-tracking overhead per execution (queue delete, table update):
	// folded into the execution time to keep the event count linear.
	overhead := simrand.Duration(simrand.LogNormalMeanCV(0.4, 0.3), rng)

	// Execution time: the task's nominal work, dilated by the host's
	// current slowdown, with small per-execution noise. The monitor kills
	// at KillMultiple x the task's own expected duration ("4x the average
	// completion time for that task", Section 5.2), plus detection latency
	// — so on healthy hosts nothing is killed, and a 4-6.5x degraded host
	// pushes most of its tasks past the threshold.
	noise := simrand.LogNormalMeanCV(1, 0.08).Sample(rng)
	dilated := time.Duration(float64(task.Work) * vm.Host.Slowdown() * noise)
	threshold := time.Duration(c.cfg.KillMultiple * float64(task.Work) *
		simrand.Uniform{Lo: c.cfg.DetectLo, Hi: c.cfg.DetectHi}.Sample(rng))

	var outcome Outcome
	if dilated > threshold {
		// The task monitor kills the execution at the threshold and
		// reschedules the task (Section 5.2).
		p.Sleep(threshold + overhead)
		c.current[id] = nil
		outcome = OutcomeVMTimeout
		c.Stats.DailyTimeouts[day]++
		c.Stats.recordKill(threshold, !vm.Host.Degraded())
	} else {
		p.Sleep(dilated + overhead)
		c.current[id] = nil
		outcome = sampleOutcome(task.Type, rng)
	}
	if task.lost && c.chaos != nil && outcome.Completes() {
		// A crash had interrupted an earlier attempt of this task; its
		// nominal work is now recovered through re-execution.
		c.chaos.Report().AddWorkRecovered(task.Work)
		task.lost = false
	}
	// Executions are recorded on completion (as the production system's
	// logs were); the day bucket is the start day, where the bulk of the
	// execution ran.
	c.Stats.TaskExecs.Inc(task.Type.String(), 1)
	c.Stats.DailyExecs[day]++
	c.Stats.Outcomes.Inc(string(outcome), 1)
	sev := oplog.Info
	if !outcome.Completes() {
		sev = oplog.Error
	}
	c.Log.Emit(oplog.Record{
		Time:     p.Now(),
		Severity: sev,
		Source:   vm.Name,
		Category: task.Type.String(),
		Event:    string(outcome),
		Detail:   fmt.Sprintf("task %d attempt %d", task.ID, task.Attempts),
	})

	switch {
	case outcome.Completes():
		c.finishTask(p, task)
	case outcome.Retryable() && task.Attempts < c.cfg.MaxAttempts:
		c.Stats.Retries++
		c.queue.enqueue(p, task)
	default:
		// Terminal failure: the pipeline gives up on this task; the request
		// still progresses (partial products, as in the real system).
		c.finishTask(p, task)
	}
}

// finishTask retires a task and releases the next stage when its stage
// drains.
func (c *Campaign) finishTask(p *sim.Proc, task *Task) {
	c.finishes++
	req := task.Request
	req.remaining[task.Type]--
	if req.remaining[task.Type] == 0 {
		c.releaseStage(p, req, stageIndex(task.Type)+1)
	}
	req.tasks[task.Type] = nil // allow the task memory to be reclaimed
}

// enqueue adds a task to the service queue and wakes one worker. A task
// whose Add fails terminally is lost (its stage never drains) — the
// production hazard the explicit status tables were built to detect.
func (b *taskQueue) enqueue(p *sim.Proc, t *Task) {
	b.tasks[t.ID] = t
	if err := b.do(p, "queue.Add", func() error {
		_, err := b.cloud.Queue.Add(p, b.q, strconv.FormatUint(t.ID, 10), 1024)
		return err
	}); err != nil {
		delete(b.tasks, t.ID)
		return
	}
	b.tokens.Put(t.ID)
}

// dequeue blocks until a task is available, then performs the real queue
// receive + delete (explicit status tracking makes the visibility timeout a
// backstop only).
func (b *taskQueue) dequeue(p *sim.Proc) *Task {
	for {
		tok := b.tokens.Get(p)
		if t := b.tryReceive(p, tok); t != nil {
			return t
		}
	}
}

// tryReceive spends one wakeup token on receiving a task. A worker killed by
// a host crash mid-receive restores the token on its unwind path, so the
// message the token paired with is eventually delivered to another worker
// instead of stranding until nobody is left to ask for it.
func (b *taskQueue) tryReceive(p *sim.Proc, tok uint64) *Task {
	credited := true
	defer func() {
		if rec := recover(); rec != nil {
			if credited {
				b.tokens.Put(tok)
			}
			panic(rec)
		}
	}()
	for {
		var msg *queuesvc.Message
		var rcpt queuesvc.Receipt
		var ok bool
		if err := b.do(p, "queue.Receive", func() error {
			var err error
			msg, rcpt, ok, err = b.cloud.Queue.Receive(p, b.q, 2*time.Hour)
			return err
		}); err != nil {
			credited = false // token spent; message stranded until its visibility backstop
			return nil
		}
		if !ok {
			credited = false // token raced a message already consumed
			return nil
		}
		// A failed delete means this message reappears after its
		// visibility window — the stale-redelivery hazard of
		// Section 5.2. The reappearance is handled below.
		b.do(p, "queue.Delete", func() error {
			return b.cloud.Queue.Delete(p, b.q, rcpt)
		})
		id, err := strconv.ParseUint(msg.Body, 10, 64)
		if err != nil {
			panic(err)
		}
		t, live := b.tasks[id]
		if !live {
			// Stale redelivery of a message whose earlier delete failed:
			// its task already ran. Discard and receive again on the
			// same token, which still has a live message to pair with.
			continue
		}
		delete(b.tasks, id)
		credited = false
		b.delivered++
		return t
	}
}
