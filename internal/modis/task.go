// Package modis implements the ModisAzure eScience application of Section 5:
// a web-portal-driven satellite-imagery pipeline (data collection →
// reprojection → analysis/reduction, plus aggregation precursor tasks)
// running as a bag of tasks on ~200 worker-role instances, with explicit
// task status tracking, a 4x-mean execution-timeout monitor, and retries.
//
// The package reproduces Table 2 (task breakdown and failure taxonomy over
// 3,054,430 executions) and Fig. 7 (daily share of executions killed by the
// VM timeout, 0-16%). Failure classes that originate in the application or
// its data (user code errors, missing source files, null logs) are sampled
// from per-stage outcome tables derived from Table 2 — documented on each
// constant — while VM execution timeouts are *emergent*: they happen exactly
// when a host degradation episode dilates a task past the monitor threshold.
package modis

import (
	"time"

	"azureobs/internal/simrand"
)

// TaskType is the pipeline stage a task belongs to (Table 2's breakdown).
type TaskType int

// Task types.
const (
	SourceDownload TaskType = iota
	Aggregation
	Reprojection
	Reduction
	numTaskTypes
)

func (t TaskType) String() string {
	switch t {
	case SourceDownload:
		return "Source download"
	case Aggregation:
		return "Aggregation"
	case Reprojection:
		return "Reprojection"
	default:
		return "Reduction"
	}
}

// Outcome is the recorded result class of one task execution, named exactly
// as in Table 2.
type Outcome string

// Outcomes of Table 2. OutcomeUserCode covers the "omitted ... primarily
// related to user-provided MATLAB code" mass that makes Table 2 sum below
// 100%.
const (
	OutcomeSuccess        Outcome = "Success"
	OutcomeUnknownFailure Outcome = "Unknown failure"
	OutcomeBlobExists     Outcome = "Blob already exists"
	OutcomeNullLog        Outcome = "Unknown - null log"
	OutcomeDownloadFailed Outcome = "Download source data failed"
	OutcomeConnection     Outcome = "Connection failure"
	OutcomeVMTimeout      Outcome = "VM execution timeout"
	OutcomeOpTimeout      Outcome = "Operation timeout"
	OutcomeCorruptBlob    Outcome = "Corrupt blob read"
	OutcomeServerBusy     Outcome = "Server busy"
	OutcomeBlobReadFail   Outcome = "Blob read fail"
	OutcomeNoSourceBlob   Outcome = "Non-existent source blob"
	OutcomeUnreadableFile Outcome = "Unable to read input file"
	OutcomeBadImage       Outcome = "Bad image format"
	OutcomeTransport      Outcome = "Transport error"
	OutcomeInternalClient Outcome = "Internal storage client error"
	OutcomeOutOfDisk      Outcome = "Out of disk space"
	OutcomeUserCode       Outcome = "User code error (unlisted)"
)

// Retryable reports whether a failed execution with this outcome is put
// back on the task queue. Terminal classes (user code bugs, missing data,
// dedup hits) are not; transient infrastructure classes are — the paper's
// "robust task status tracking and retry mechanisms".
func (o Outcome) Retryable() bool {
	switch o {
	case OutcomeDownloadFailed, OutcomeConnection, OutcomeVMTimeout,
		OutcomeOpTimeout, OutcomeCorruptBlob, OutcomeServerBusy,
		OutcomeBlobReadFail, OutcomeTransport, OutcomeInternalClient:
		return true
	}
	return false
}

// Completes reports whether the execution finishes the task from the
// pipeline's perspective: successes, dedup hits ("blob already exists"
// means the product was already computed) and the null-log downloads (the
// download happened; only its log was lost).
func (o Outcome) Completes() bool {
	switch o {
	case OutcomeSuccess, OutcomeBlobExists, OutcomeNullLog:
		return true
	}
	return false
}

// Task is one unit of pipeline work.
type Task struct {
	ID      uint64
	Type    TaskType
	Request *Request
	// Work is the nominal (undilated) execution duration.
	Work time.Duration
	// Attempts counts executions so far.
	Attempts int
	// lost marks a task whose execution a host crash interrupted; cleared
	// (and credited as recovered work) when a later attempt completes.
	lost bool
}

// Request is one portal submission expanded into staged tasks.
type Request struct {
	ID uint64
	// planned is the reprojection task count the portal sized the request
	// at; the service manager expands from it.
	planned int
	// submitted is the portal submission time; when the last stage drains
	// the user is notified (the paper: "an email is sent to the user") and
	// the turnaround is recorded.
	submitted time.Duration
	// remaining counts incomplete tasks per stage; when a stage drains the
	// next is released (collection → reprojection → reduction; aggregation
	// precedes reduction).
	remaining [numTaskTypes]int
	tasks     [numTaskTypes][]*Task
}

// outcomeEntry pairs an outcome with its conditional probability for one
// task type.
type outcomeEntry struct {
	o Outcome
	p float64
}

// Per-type outcome tables. Derivation (see DESIGN.md and EXPERIMENTS.md):
// Table 2 gives global shares over 3,054,430 executions; each class is
// attributed to the stages that can produce it and converted to a
// conditional probability by dividing by that stage's execution share
// (download 4.57%, aggregation 0.29%, reprojection 55.79%, reduction
// 39.36%). "Success" is the remainder. VM execution timeouts are NOT in
// these tables — they emerge from host degradation.
var outcomeTables = map[TaskType][]outcomeEntry{
	// Every source-download execution was recorded with a null log in the
	// paper's data: the "Unknown - null log" count (139,609) equals the
	// download execution count exactly. The download itself functionally
	// completes; only its outcome record is lost.
	SourceDownload: {
		{OutcomeNullLog, 1.0},
	},
	Aggregation: {
		{OutcomeUnknownFailure, 0.009},
		{OutcomeConnection, 0.003},
		{OutcomeSuccess, 0.988},
	},
	Reprojection: {
		// 182,726 / 1,704,002: the product was computed by an earlier
		// request and the result blob already exists.
		{OutcomeBlobExists, 0.1072},
		// 125,164 / 1,704,002: the data-collection substage's FTP fetch
		// failed.
		{OutcomeDownloadFailed, 0.0735},
		// Unknown failures split over reprojection+reduction executions:
		// 345,180 / 2,906,115 = 11.88% of each.
		{OutcomeUnknownFailure, 0.1188},
		{OutcomeConnection, 0.00294},
		{OutcomeOpTimeout, 0.00137},
		{OutcomeCorruptBlob, 0.00107},
		{OutcomeServerBusy, 0.00042},
		{OutcomeBlobReadFail, 0.00021},
		{OutcomeNoSourceBlob, 0.00017},
		{OutcomeBadImage, 0.0000088},
		{OutcomeTransport, 0.0000070},
		{OutcomeSuccess, 0.6943042},
	},
	Reduction: {
		{OutcomeUnknownFailure, 0.1188},
		// The unlisted user-MATLAB failures (Table 2 sums to 92.2%; the
		// remaining 7.77% of all executions ≈ 19.7% of reductions).
		{OutcomeUserCode, 0.197},
		{OutcomeConnection, 0.00294},
		{OutcomeOpTimeout, 0.00137},
		{OutcomeCorruptBlob, 0.00107},
		{OutcomeServerBusy, 0.00042},
		{OutcomeBlobReadFail, 0.00021},
		{OutcomeUnreadableFile, 0.0000166},
		{OutcomeInternalClient, 0.0000083},
		{OutcomeOutOfDisk, 0.0000058},
		{OutcomeSuccess, 0.6781593},
	},
}

// sampleOutcome draws a non-timeout outcome for one execution.
func sampleOutcome(t TaskType, rng *simrand.RNG) Outcome {
	u := rng.Float64()
	for _, e := range outcomeTables[t] {
		if u < e.p {
			return e.o
		}
		u -= e.p
	}
	return OutcomeSuccess
}

// nominalWork returns the distribution of a task type's undilated execution
// time. A "normal task execution completed within 10 min" (Section 5.2);
// reprojection takes "several minutes of computation on a small-size
// instance".
func nominalWork(t TaskType) simrand.Dist {
	switch t {
	case SourceDownload:
		return simrand.LogNormalMeanCV(120, 0.5)
	case Aggregation:
		return simrand.LogNormalMeanCV(240, 0.4)
	case Reprojection:
		return simrand.LogNormalMeanCV(330, 0.45)
	default: // Reduction
		return simrand.LogNormalMeanCV(240, 0.5)
	}
}

// paperTable2 returns the published Table 2 execution counts.
func paperTable2() (taskCounts map[TaskType]uint64, outcomeCounts map[Outcome]uint64) {
	taskCounts = map[TaskType]uint64{
		SourceDownload: 139609,
		Aggregation:    8706,
		Reprojection:   1704002,
		Reduction:      1202113,
	}
	outcomeCounts = map[Outcome]uint64{
		OutcomeSuccess:        2000656,
		OutcomeUnknownFailure: 345180,
		OutcomeBlobExists:     182726,
		OutcomeNullLog:        139609,
		OutcomeDownloadFailed: 125164,
		OutcomeConnection:     8966,
		OutcomeVMTimeout:      5300,
		OutcomeOpTimeout:      4178,
		OutcomeCorruptBlob:    3107,
		OutcomeServerBusy:     1287,
		OutcomeBlobReadFail:   638,
		OutcomeNoSourceBlob:   519,
		OutcomeUnreadableFile: 20,
		OutcomeBadImage:       15,
		OutcomeTransport:      12,
		OutcomeInternalClient: 10,
		OutcomeOutOfDisk:      7,
	}
	return
}
