package modis

import (
	"time"

	"azureobs/internal/chaos"
	"azureobs/internal/core"
	"azureobs/internal/core/sched"
)

// ChaosReportConfig scales the chaos-campaign experiment: the §5 failure
// study re-run as an ablation. Each scenario is one ModisAzure campaign under
// a different fault mix — no chaos, host crashes only, rack partitions only,
// storage blackouts only, and everything at once — so the anchors can both
// count the injected taxonomy and test the paper's survival claim: the retry
// and timeout-monitor machinery keeps throughput near the fault-free baseline.
type ChaosReportConfig struct {
	core.Proto
	Days            int
	CampaignWorkers int // worker-role instances per campaign (not Proto.Workers)
}

// ChaosReportConfigFor expands a Proto at the requested scale.
func ChaosReportConfigFor(p core.Proto) ChaosReportConfig {
	cfg := ChaosReportConfig{Proto: core.Defaults().Apply(p)}
	switch p.Scale {
	case core.QuickScale:
		cfg.Days, cfg.CampaignWorkers = 7, 30
	case core.ValidateScale:
		cfg.Days, cfg.CampaignWorkers = 14, 40
	default: // PaperScale
		cfg.Days, cfg.CampaignWorkers = 30, 120
	}
	return cfg
}

// chaosScenarios returns the ablation cells. The fault processes are
// accelerated (MTBFs in the tens of hours rather than the thousands a real
// fabric exhibits) so a weeks-long campaign sees dozens of incidents; repair
// windows keep the paper's §5 scale. Every scenario shares the experiment
// seed: with chaos streams label-forked, the baseline workload is
// bit-identical across cells, which is what makes the throughput ratio a
// controlled comparison.
func chaosScenarios() []struct {
	name string
	cfg  func() *chaos.Config
} {
	crash := chaos.Process{MeanInterarrival: 18 * time.Hour,
		RepairLo: 15 * time.Minute, RepairHi: 2 * time.Hour}
	degrade := chaos.Process{MeanInterarrival: 36 * time.Hour,
		RepairLo: 2 * time.Hour, RepairHi: 12 * time.Hour}
	partition := chaos.Process{MeanInterarrival: 36 * time.Hour,
		RepairLo: 5 * time.Minute, RepairHi: 45 * time.Minute}
	blackout := chaos.Process{MeanInterarrival: 48 * time.Hour,
		RepairLo: 2 * time.Minute, RepairHi: 20 * time.Minute}
	brownout := chaos.Process{MeanInterarrival: 24 * time.Hour,
		RepairLo: 10 * time.Minute, RepairHi: 90 * time.Minute}
	return []struct {
		name string
		cfg  func() *chaos.Config
	}{
		{"baseline", func() *chaos.Config { return nil }},
		{"crash", func() *chaos.Config { return &chaos.Config{HostCrash: crash} }},
		{"partition", func() *chaos.Config { return &chaos.Config{RackPartition: partition} }},
		{"blackout", func() *chaos.Config { return &chaos.Config{StorageBlackout: blackout} }},
		{"combined", func() *chaos.Config {
			return &chaos.Config{HostCrash: crash, HostDegrade: degrade,
				RackPartition: partition, StorageBlackout: blackout, StorageBrownout: brownout}
		}},
	}
}

// ChaosScenarioResult is one ablation cell's outcome.
type ChaosScenarioResult struct {
	Scenario       string
	Executions     uint64
	CrashAborted   uint64
	ReplacementVMs uint64
	Violations     uint64
	Report         *chaos.Report // nil for the baseline
}

// ChaosReportResult is the ablation dataset.
type ChaosReportResult struct {
	Days      int
	Scenarios []ChaosScenarioResult

	// expectedCrashes is the crash scenario's nominal incident count
	// (horizon / MTBF), the anchor target for the injection process.
	expectedCrashes float64
	// crashRepairMean is the nominal mean of the crash repair window.
	crashRepairMean time.Duration
}

// RunChaosReport executes the ablation, sharding scenario cells over
// cfg.Workers scheduler workers. Each cell enables the simulation invariant
// harness in recording mode, so the experiment's headline anchor — zero
// invariant violations across every fault mix — is checked on every run.
func RunChaosReport(cfg ChaosReportConfig) *ChaosReportResult {
	if cfg.Days == 0 {
		cfg.Days = 14
	}
	if cfg.CampaignWorkers == 0 {
		cfg.CampaignWorkers = 40
	}
	scenarios := chaosScenarios()
	res := &ChaosReportResult{Days: cfg.Days}
	res.expectedCrashes = float64(cfg.Days) * 24 /
		scenarios[1].cfg().HostCrash.MeanInterarrival.Hours()
	res.crashRepairMean = (scenarios[1].cfg().HostCrash.RepairLo +
		scenarios[1].cfg().HostCrash.RepairHi) / 2
	pool := sched.New(cfg.Workers)
	res.Scenarios = sched.Map(pool, len(scenarios), func(i int) ChaosScenarioResult {
		sc := scenarios[i]
		camp := NewCampaign(Config{
			Seed:                cfg.Seed,
			Days:                cfg.Days,
			Workers:             cfg.CampaignWorkers,
			MeanRequestGap:      100 * time.Minute,
			MeanTasksPerRequest: 140,
			Chaos:               sc.cfg(),
			Domains:             cfg.Proto.Domains,
		})
		// Recording mode: a violation must not abort the campaign mid-fault —
		// the whole point is counting what survives. (If a test binary turned
		// fail-fast checking on for every engine, that stricter mode wins.)
		camp.EnableInvariants(false)
		st := camp.Run()
		out := ChaosScenarioResult{
			Scenario:       sc.name,
			Executions:     st.TotalExecs(),
			CrashAborted:   st.CrashAborted,
			ReplacementVMs: st.ReplacementVMs,
			Violations:     camp.InvariantViolations(),
			Report:         camp.ChaosReport(),
		}
		return out
	})
	return res
}

// scenario returns a cell by name (nil if absent).
func (r *ChaosReportResult) scenario(name string) *ChaosScenarioResult {
	for i := range r.Scenarios {
		if r.Scenarios[i].Scenario == name {
			return &r.Scenarios[i]
		}
	}
	return nil
}

// Anchors reports the ablation's claims: the invariant harness stays silent
// under every fault mix, the injection processes hit their nominal rates, the
// crash repair delay matches its configured window, and — the paper's §5
// survival story — a campaign under the full fault mix retains most of the
// fault-free baseline's throughput.
func (r *ChaosReportResult) Anchors() []core.Anchor {
	var out []core.Anchor
	var violations uint64
	for _, sc := range r.Scenarios {
		violations += sc.Violations
	}
	out = append(out, core.Anchor{
		Name: "invariant violations (all scenarios)", Unit: "count",
		Paper: 0, Measured: float64(violations)})
	if crash := r.scenario("crash"); crash != nil && crash.Report != nil {
		out = append(out, core.Anchor{
			Name: "host crashes injected", Unit: "count",
			Paper:    r.expectedCrashes,
			Measured: float64(crash.Report.Injected(chaos.ClassHostCrash))})
		out = append(out, core.Anchor{
			Name: "host crash mean time to repair", Unit: "min",
			Paper:    r.crashRepairMean.Minutes(),
			Measured: crash.Report.MTTR(chaos.ClassHostCrash).Minutes()})
	}
	base, comb := r.scenario("baseline"), r.scenario("combined")
	if base != nil && comb != nil && base.Executions > 0 {
		out = append(out, core.Anchor{
			Name: "throughput under full chaos vs baseline", Unit: "x",
			Paper:    1,
			Measured: float64(comb.Executions) / float64(base.Executions)})
	}
	return out
}

func init() {
	core.Register(chaosReportExperiment{})
}

// chaosReportExperiment adapts the ablation to the registry. It lives here —
// not in core's own init table — because core cannot import modis; the
// experiment appears in the registry of any binary that links this package
// (azvalidate and modisazure already do, azbench via a blank import).
type chaosReportExperiment struct{}

func (chaosReportExperiment) Name() string { return "chaosreport" }
func (chaosReportExperiment) Run(p core.Proto) core.Result {
	return RunChaosReport(ChaosReportConfigFor(p))
}
