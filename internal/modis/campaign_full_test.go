package modis

import (
	"math"
	"testing"
)

// TestFullScaleCampaign reproduces Table 2 and Fig. 7 at the paper's actual
// scale: 242 days, 200 workers, ~3 million task executions. It takes ~25 s;
// skip with -short.
func TestFullScaleCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale campaign skipped in -short mode")
	}
	st := NewCampaign(DefaultConfig()).Run()

	if math.Abs(float64(st.TotalExecs())-3054430)/3054430 > 0.05 {
		t.Fatalf("total executions = %d, paper 3,054,430 (>5%% off)", st.TotalExecs())
	}
	total := float64(st.TotalExecs())
	share := func(name string) float64 { return float64(st.Outcomes.Get(name)) / total * 100 }

	checks := []struct {
		name   string
		paper  float64
		absTol float64
	}{
		{string(OutcomeSuccess), 65.50, 1.0},
		{string(OutcomeUnknownFailure), 11.30, 0.5},
		{string(OutcomeBlobExists), 5.98, 0.4},
		{string(OutcomeNullLog), 4.57, 0.4},
		{string(OutcomeDownloadFailed), 4.10, 0.4},
		{string(OutcomeConnection), 0.29, 0.06},
		{string(OutcomeOpTimeout), 0.14, 0.04},
		{string(OutcomeCorruptBlob), 0.10, 0.03},
	}
	for _, c := range checks {
		if got := share(c.name); math.Abs(got-c.paper) > c.absTol {
			t.Errorf("%s share = %.2f%%, paper %.2f%%", c.name, got, c.paper)
		}
	}

	// VM timeouts: ~0.17% of executions overall (tolerate 0.05-0.45%: the
	// episode process is stochastic), with daily spikes in the 5-20% band
	// and a majority of quiet days — the Fig. 7 shape.
	ts := st.TimeoutShare() * 100
	if ts < 0.05 || ts > 0.45 {
		t.Errorf("VM timeout share = %.3f%%, paper 0.17%%", ts)
	}
	fig7 := st.Fig7Series()
	if fig7.Max() < 5 || fig7.Max() > 25 {
		t.Errorf("Fig 7 peak = %.1f%%, paper up to ~16%%", fig7.Max())
	}
	quiet := 0
	for _, v := range fig7.Values {
		if v == 0 {
			quiet++
		}
	}
	if float64(quiet)/float64(fig7.Len()) < 0.5 {
		t.Errorf("only %d/%d quiet days; Fig 7 shows mostly-zero days with spikes", quiet, fig7.Len())
	}

	// Task mix within a point of the paper.
	taskShare := func(ty TaskType) float64 {
		return float64(st.TaskExecs.Get(ty.String())) / total * 100
	}
	if v := taskShare(Reprojection); math.Abs(v-55.79) > 1.5 {
		t.Errorf("reprojection share = %.2f%%, paper 55.79%%", v)
	}
	if v := taskShare(Reduction); math.Abs(v-39.36) > 1.5 {
		t.Errorf("reduction share = %.2f%%, paper 39.36%%", v)
	}
	if v := taskShare(SourceDownload); math.Abs(v-4.57) > 0.5 {
		t.Errorf("download share = %.2f%%, paper 4.57%%", v)
	}
}
