package modis

import (
	"math"
	"testing"
	"time"

	"azureobs/internal/fabric"
	"azureobs/internal/simrand"
	"azureobs/internal/storage/reqpath"
)

// smallCampaign returns a ~1% scale campaign (a few weeks, fewer workers)
// that still exercises every mechanism.
func smallCampaign(seed uint64) Config {
	return Config{
		Seed:                seed,
		Days:                21,
		Workers:             60,
		MeanRequestGap:      100 * time.Minute,
		MeanTasksPerRequest: 140,
	}
}

func TestOutcomeTablesSumToOne(t *testing.T) {
	for ty, table := range outcomeTables {
		var sum float64
		for _, e := range table {
			if e.p < 0 {
				t.Fatalf("%v: negative probability %v", ty, e.p)
			}
			sum += e.p
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("%v outcome table sums to %v", ty, sum)
		}
	}
}

func TestOutcomeProperties(t *testing.T) {
	if !OutcomeSuccess.Completes() || !OutcomeBlobExists.Completes() || !OutcomeNullLog.Completes() {
		t.Fatal("completing outcomes misclassified")
	}
	if OutcomeUnknownFailure.Completes() || OutcomeUserCode.Completes() {
		t.Fatal("terminal failures must not complete")
	}
	if !OutcomeVMTimeout.Retryable() || !OutcomeDownloadFailed.Retryable() {
		t.Fatal("transient outcomes must be retryable")
	}
	if OutcomeUnknownFailure.Retryable() || OutcomeBlobExists.Retryable() {
		t.Fatal("terminal outcomes must not be retryable")
	}
}

func TestSampleOutcomeDistribution(t *testing.T) {
	rng := simrand.New(1)
	n := 200000
	counts := map[Outcome]int{}
	for i := 0; i < n; i++ {
		counts[sampleOutcome(Reprojection, rng)]++
	}
	frac := func(o Outcome) float64 { return float64(counts[o]) / float64(n) }
	if math.Abs(frac(OutcomeBlobExists)-0.1072) > 0.004 {
		t.Fatalf("blob-exists frac = %.4f", frac(OutcomeBlobExists))
	}
	if math.Abs(frac(OutcomeDownloadFailed)-0.0735) > 0.004 {
		t.Fatalf("download-failed frac = %.4f", frac(OutcomeDownloadFailed))
	}
	if math.Abs(frac(OutcomeSuccess)-0.6943) > 0.006 {
		t.Fatalf("success frac = %.4f", frac(OutcomeSuccess))
	}
	if counts[OutcomeNullLog] != 0 {
		t.Fatal("null-log sampled for a non-download task")
	}
	for i := 0; i < 1000; i++ {
		if o := sampleOutcome(SourceDownload, rng); o != OutcomeNullLog {
			t.Fatalf("download outcome = %v, want null-log always", o)
		}
	}
}

func TestCampaignRunsAndMatchesShape(t *testing.T) {
	st := NewCampaign(smallCampaign(7)).Run()
	if st.TotalExecs() < 10000 {
		t.Fatalf("too few executions: %d", st.TotalExecs())
	}
	if st.Requests < 50 {
		t.Fatalf("too few requests: %d", st.Requests)
	}
	total := float64(st.TotalExecs())
	share := func(name string) float64 { return float64(st.TaskExecs.Get(name)) / total * 100 }
	// Table 2 task mix: 4.57 / 0.29 / 55.79 / 39.36 percent.
	if v := share("Reprojection"); math.Abs(v-55.79) > 6 {
		t.Fatalf("reprojection share = %.1f%%, want ~55.8%%", v)
	}
	if v := share("Reduction"); math.Abs(v-39.36) > 6 {
		t.Fatalf("reduction share = %.1f%%, want ~39.4%%", v)
	}
	if v := share("Source download"); math.Abs(v-4.57) > 2 {
		t.Fatalf("download share = %.1f%%, want ~4.6%%", v)
	}
	// Success ~65.5%.
	if v := st.SuccessShare() * 100; math.Abs(v-65.5) > 5 {
		t.Fatalf("success share = %.1f%%, want ~65.5%%", v)
	}
	// Null-log count equals download executions exactly (the Table 2
	// coincidence the model encodes).
	if st.Outcomes.Get(string(OutcomeNullLog)) != st.TaskExecs.Get("Source download") {
		t.Fatal("null-log count != download executions")
	}
}

func TestCampaignDeterministic(t *testing.T) {
	cfg := smallCampaign(3)
	cfg.Days = 7
	a := NewCampaign(cfg).Run()
	b := NewCampaign(cfg).Run()
	if a.TotalExecs() != b.TotalExecs() || a.Retries != b.Retries {
		t.Fatalf("nondeterministic campaign: %d/%d vs %d/%d",
			a.TotalExecs(), a.Retries, b.TotalExecs(), b.Retries)
	}
	for _, name := range a.Outcomes.Names() {
		if a.Outcomes.Get(name) != b.Outcomes.Get(name) {
			t.Fatalf("outcome %q differs", name)
		}
	}
}

func TestTimeoutsEmergeFromDegradation(t *testing.T) {
	// Forced degradation: frequent heavy episodes must produce VM timeouts;
	// with degradation disabled (impossible episodes) there must be none.
	heavy := smallCampaign(11)
	heavy.Degradation = &fabric.DegradationConfig{
		MeanInterarrival: 40 * time.Hour,
		FracLo:           0.3, FracHi: 0.5,
		SlowLo: 5, SlowHi: 6.5,
		DurLo: 6 * time.Hour, DurHi: 24 * time.Hour,
	}
	st := NewCampaign(heavy).Run()
	if st.Outcomes.Get(string(OutcomeVMTimeout)) == 0 {
		t.Fatal("no VM timeouts under heavy degradation")
	}
	if st.Fig7Series().Max() <= 0 {
		t.Fatal("Fig 7 series flat under heavy degradation")
	}

	calm := smallCampaign(11)
	calm.Degradation = &fabric.DegradationConfig{
		MeanInterarrival: 1e6 * time.Hour, // effectively never
		FracLo:           0.01, FracHi: 0.02,
		SlowLo: 4, SlowHi: 5,
		DurLo: time.Hour, DurHi: 2 * time.Hour,
	}
	st2 := NewCampaign(calm).Run()
	if st2.Outcomes.Get(string(OutcomeVMTimeout)) != 0 {
		t.Fatalf("VM timeouts without degradation: %d", st2.Outcomes.Get(string(OutcomeVMTimeout)))
	}
}

func TestRequestTurnaround(t *testing.T) {
	st := NewCampaign(smallCampaign(37)).Run()
	if st.CompletedRequests == 0 {
		t.Fatal("no requests completed")
	}
	if st.CompletedRequests > st.Requests {
		t.Fatalf("completed %d > submitted %d", st.CompletedRequests, st.Requests)
	}
	if int(st.CompletedRequests) != st.TurnaroundHours.N() {
		t.Fatalf("turnaround samples %d != completions %d",
			st.TurnaroundHours.N(), st.CompletedRequests)
	}
	// A request of ~140 reprojections on 60 workers takes hours, not
	// seconds and not weeks.
	med := st.TurnaroundHours.Median()
	if med < 0.2 || med > 100 {
		t.Fatalf("median turnaround = %.2f h, implausible", med)
	}
}

func TestRetriesBounded(t *testing.T) {
	st := NewCampaign(smallCampaign(13)).Run()
	if st.Retries == 0 {
		t.Fatal("no retries observed")
	}
	// Retry inflation: executions / distinct should be modest (< 1.3).
	infl := float64(st.TotalExecs()) / float64(st.DistinctTasks)
	if infl > 1.3 {
		t.Fatalf("retry inflation = %.2f, too high", infl)
	}
}

func TestFig7SeriesShape(t *testing.T) {
	cfg := smallCampaign(17)
	st := NewCampaign(cfg).Run()
	ts := st.Fig7Series()
	if ts.Len() != cfg.Days+1 {
		t.Fatalf("series length = %d, want %d", ts.Len(), cfg.Days+1)
	}
	for _, v := range ts.Values {
		if v < 0 || v > 100 {
			t.Fatalf("daily percentage out of range: %v", v)
		}
	}
}

func TestAnchorsProduced(t *testing.T) {
	st := NewCampaign(smallCampaign(19)).Run()
	anchors := st.Anchors()
	if len(anchors) < 10 {
		t.Fatalf("anchors = %d, want ≥ 10", len(anchors))
	}
	for _, a := range anchors {
		if a.Name == "task share: Reprojection" && a.RelErr() > 0.15 {
			t.Fatalf("reprojection share off: %v", a)
		}
	}
}

// TestLogDerivedViewMatchesCounters checks the Section 6.3 pipeline: the
// Table 2 / Fig 7 views derived from the structured log must agree exactly
// with the campaign's direct counters.
func TestLogDerivedViewMatchesCounters(t *testing.T) {
	c := NewCampaign(smallCampaign(29))
	st := c.Run()
	if c.Analyzer.Total() != st.TotalExecs() {
		t.Fatalf("log records %d != executions %d", c.Analyzer.Total(), st.TotalExecs())
	}
	for _, name := range st.Outcomes.Names() {
		if c.Analyzer.ByEvent[name] != st.Outcomes.Get(name) {
			t.Fatalf("log-derived %q = %d, counter = %d",
				name, c.Analyzer.ByEvent[name], st.Outcomes.Get(name))
		}
	}
	for _, ty := range []TaskType{SourceDownload, Aggregation, Reprojection, Reduction} {
		if c.Analyzer.ByCategory[ty.String()] != st.TaskExecs.Get(ty.String()) {
			t.Fatalf("log-derived category %v mismatch", ty)
		}
	}
	// Fig 7 from the log equals Fig 7 from the counters, day by day.
	fig7 := st.Fig7Series()
	for d := 0; d < fig7.Len(); d++ {
		if got, want := c.Analyzer.DailyTrackedShare(d), fig7.Values[d]; got != want {
			t.Fatalf("day %d: log %.4f vs counters %.4f", d, got, want)
		}
	}
	// The diagnostic ring keeps the most recent records.
	if len(c.Log.Recent()) != 256 {
		t.Fatalf("ring = %d records, want 256", len(c.Log.Recent()))
	}
}

func TestStageOrdering(t *testing.T) {
	order := stageOrder()
	if order[0] != SourceDownload || order[1] != Reprojection ||
		order[2] != Aggregation || order[3] != Reduction {
		t.Fatalf("pipeline order wrong: %v", order)
	}
	for i, ty := range order {
		if stageIndex(ty) != i {
			t.Fatalf("stageIndex(%v) = %d, want %d", ty, stageIndex(ty), i)
		}
	}
}

// TestKillAblation exercises the Section 5.2 what-if: tighter kill bounds
// must waste less compute per kill but start killing healthy stragglers;
// looser bounds the reverse.
func TestKillAblation(t *testing.T) {
	base := smallCampaign(31)
	base.Days = 14
	base.Degradation = &fabric.DegradationConfig{
		MeanInterarrival: 60 * time.Hour,
		FracLo:           0.2, FracHi: 0.4,
		SlowLo: 4.5, SlowHi: 6.5,
		DurLo: 6 * time.Hour, DurHi: 18 * time.Hour,
	}
	pts := RunKillAblation(base, []float64{2, 4, 8}, 2)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	tight, paper, loose := pts[0], pts[1], pts[2]
	// Tighter bounds kill more executions overall (they catch stragglers).
	if tight.Timeouts <= paper.Timeouts {
		t.Fatalf("2x kills (%d) not more than 4x kills (%d)", tight.Timeouts, paper.Timeouts)
	}
	// Tight bounds false-kill healthy work; the paper's 4x (with its
	// detection factor) essentially never does.
	if tight.FalseKills == 0 {
		t.Fatal("2x bound produced no false kills")
	}
	if paper.FalseKills > tight.FalseKills {
		t.Fatalf("4x false kills (%d) exceed 2x (%d)", paper.FalseKills, tight.FalseKills)
	}
	// Wasted compute per kill grows with the bound.
	perKill := func(p KillAblationPoint) float64 {
		if p.Timeouts == 0 {
			return 0
		}
		return p.WastedHours / float64(p.Timeouts)
	}
	if !(perKill(tight) < perKill(paper) && (loose.Timeouts == 0 || perKill(paper) < perKill(loose))) {
		t.Fatalf("waste per kill not increasing with bound: %.3f %.3f %.3f",
			perKill(tight), perKill(paper), perKill(loose))
	}
}

func TestPaperTable2Consistency(t *testing.T) {
	tasks, outcomes := paperTable2()
	var taskTotal uint64
	for _, v := range tasks {
		taskTotal += v
	}
	if taskTotal != 3054430 {
		t.Fatalf("task total = %d, want 3054430", taskTotal)
	}
	if outcomes[OutcomeNullLog] != tasks[SourceDownload] {
		t.Fatal("Table 2 coincidence broken: null-log != download count")
	}
	if outcomes[OutcomeSuccess] != 2000656 {
		t.Fatalf("success = %d", outcomes[OutcomeSuccess])
	}
}

// TestStorageFaultCampaign: one StorageFaults line injects the same
// transient mix into every storage service the campaign touches; the retry
// layer absorbs nearly all of it (Section 5.2's "robust retry mechanisms"),
// so the campaign still completes with its usual shape instead of crashing.
func TestStorageFaultCampaign(t *testing.T) {
	cfg := smallCampaign(11)
	cfg.Days = 7
	clean := NewCampaign(cfg).Run()
	if clean.StorageRetries != 0 || clean.StorageErrors.Total() != 0 {
		t.Fatalf("fault-free campaign shows storage trouble: retries=%d errs=%d",
			clean.StorageRetries, clean.StorageErrors.Total())
	}

	cfg.StorageFaults = reqpath.FaultConfig{ConnFailProb: 0.05, ServerBusyProb: 0.02}
	st := NewCampaign(cfg).Run()
	if st.StorageRetries == 0 {
		t.Fatal("fault campaign recorded no storage retries")
	}
	// With p≈0.07 per attempt and 4 attempts, terminal failures are ~p^4 ≈
	// 2e-5 of ops — rare but the campaign must survive them when they land.
	if st.Requests == 0 || st.TotalExecs() < 1000 {
		t.Fatalf("fault campaign collapsed: requests=%d execs=%d", st.Requests, st.TotalExecs())
	}
	// Terminal storage failures shed work; they must stay a sliver of the
	// retry volume.
	if st.StorageErrors.Total() > st.StorageRetries/10 {
		t.Fatalf("too many terminal storage errors: %d (retries %d)",
			st.StorageErrors.Total(), st.StorageRetries)
	}
}
