// Package simrand provides deterministic, forkable random streams and the
// distribution family used to parameterise the simulated Azure platform.
//
// Every stochastic component takes an *RNG forked from a root seed with a
// stable label, so adding a new consumer never perturbs the draws seen by
// existing ones — experiments stay bit-for-bit reproducible as the code
// evolves.
package simrand

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
	"time"
)

// RNG is a deterministic random stream.
type RNG struct {
	*rand.Rand
	seed uint64
}

// New returns a stream rooted at seed.
func New(seed uint64) *RNG {
	return &RNG{Rand: rand.New(rand.NewPCG(seed, splitmix64(seed))), seed: seed}
}

// Fork derives an independent stream identified by label. Forking the same
// (seed, label) pair always yields the same stream; distinct labels yield
// decorrelated streams.
func (r *RNG) Fork(label string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(label))
	return New(splitmix64(r.seed ^ h.Sum64()))
}

// ForkN derives an indexed independent stream, e.g. one per client.
func (r *RNG) ForkN(label string, n int) *RNG {
	h := fnv.New64a()
	h.Write([]byte(label))
	return New(splitmix64(r.seed ^ h.Sum64() ^ (uint64(n)+1)*0x9e3779b97f4a7c15))
}

// ForkDomain derives the stream for simulation domain d. It is ForkN under a
// reserved label, named so domain-sharded drivers fork per-domain roots the
// same way everywhere: the stream for domain d depends only on (seed, d) —
// never on how many domains exist — so resharding a workload from 1 to N
// domains cannot shift any domain's draws.
func (r *RNG) ForkDomain(d int) *RNG { return r.ForkN("domain", d) }

// splitmix64 is the finalizer of the SplitMix64 generator, used to decorrelate
// derived seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Dist is a real-valued random distribution.
type Dist interface {
	// Sample draws one value using the given stream.
	Sample(r *RNG) float64
	// Mean returns the distribution's analytic mean (used for calibration
	// checks and for the 4x-timeout heuristics that need expected values).
	Mean() float64
}

// Duration samples d (interpreted in seconds) and converts to time.Duration,
// clamping at zero.
func Duration(d Dist, r *RNG) time.Duration {
	s := d.Sample(r)
	if s < 0 {
		s = 0
	}
	return time.Duration(s * float64(time.Second))
}

// Const is the degenerate distribution: always Value.
type Const float64

func (c Const) Sample(*RNG) float64 { return float64(c) }
func (c Const) Mean() float64       { return float64(c) }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

func (u Uniform) Sample(r *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }
func (u Uniform) Mean() float64         { return (u.Lo + u.Hi) / 2 }

// Exponential has the given Rate (λ); mean 1/λ.
type Exponential struct {
	Rate float64
}

func (e Exponential) Sample(r *RNG) float64 { return r.ExpFloat64() / e.Rate }
func (e Exponential) Mean() float64         { return 1 / e.Rate }

// Normal is the Gaussian distribution. Samples are unbounded; see
// TruncNormal for the clipped variant used for physical durations.
type Normal struct {
	Mu, Sigma float64
}

func (n Normal) Sample(r *RNG) float64 { return n.Mu + n.Sigma*r.NormFloat64() }
func (n Normal) Mean() float64         { return n.Mu }

// TruncNormal is a Gaussian resampled into [Lo, Hi]. It models measured
// duration statistics (Table 1 of the paper reports AVG and STD; durations
// cannot be negative). Resampling keeps the shape near the mode; after 100
// rejected draws the sample clamps, so a misconfigured range cannot hang.
type TruncNormal struct {
	Mu, Sigma float64
	Lo, Hi    float64
}

func (t TruncNormal) Sample(r *RNG) float64 {
	for i := 0; i < 100; i++ {
		v := t.Mu + t.Sigma*r.NormFloat64()
		if v >= t.Lo && v <= t.Hi {
			return v
		}
	}
	return math.Min(math.Max(t.Mu, t.Lo), t.Hi)
}

// Mean returns the untruncated mean; with Lo/Hi a few sigma out (as used
// throughout) the truncation bias is negligible.
func (t TruncNormal) Mean() float64 { return t.Mu }

// PosNormal returns a TruncNormal clipped at zero below and +6σ above — the
// standard shape for "AVG/STD of a measured duration".
func PosNormal(mu, sigma float64) TruncNormal {
	return TruncNormal{Mu: mu, Sigma: sigma, Lo: 0, Hi: mu + 6*sigma}
}

// PosNormalMean returns a zero-truncated normal whose *truncated* mean
// equals mean: when sigma is large relative to mean, naive truncation at
// zero inflates the sample mean (a Normal(6, 5) clipped at 0 averages ~7.1);
// this solves for the underlying location so published AVG/STD pairs like
// Table 1's "delete: 6 ± 5 s" are recovered exactly.
func PosNormalMean(mean, sigma float64) TruncNormal {
	if sigma <= 0 || mean <= 0 {
		return PosNormal(mean, sigma)
	}
	// Truncated-at-zero mean: m(mu) = mu + sigma·λ(−mu/sigma), with
	// λ(a) = φ(a)/(1−Φ(a)) the inverse Mills ratio. m is increasing in mu;
	// bisect for m(mu) = mean.
	m := func(mu float64) float64 {
		a := -mu / sigma
		phi := math.Exp(-a*a/2) / math.Sqrt(2*math.Pi)
		tail := 0.5 * math.Erfc(a/math.Sqrt2) // 1 − Φ(a)
		if tail < 1e-300 {
			return mu
		}
		return mu + sigma*phi/tail
	}
	lo, hi := mean-6*sigma, mean
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if m(mid) < mean {
			lo = mid
		} else {
			hi = mid
		}
	}
	mu := (lo + hi) / 2
	return TruncNormal{Mu: mu, Sigma: sigma, Lo: 0, Hi: mean + 6*sigma}
}

// LogNormal is parameterised by the mean and sigma of the underlying normal.
type LogNormal struct {
	Mu, Sigma float64
}

func (l LogNormal) Sample(r *RNG) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// LogNormalMeanCV builds a LogNormal from its arithmetic mean and
// coefficient of variation — the natural way to express "latency with X%
// jitter".
func LogNormalMeanCV(mean, cv float64) LogNormal {
	s2 := math.Log(1 + cv*cv)
	return LogNormal{Mu: math.Log(mean) - s2/2, Sigma: math.Sqrt(s2)}
}

// Pareto is the heavy-tailed distribution with scale Xm and shape Alpha.
type Pareto struct {
	Xm, Alpha float64
}

func (p Pareto) Sample(r *RNG) float64 {
	return p.Xm / math.Pow(1-r.Float64(), 1/p.Alpha)
}

func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Bernoulli returns 1 with probability P, else 0.
type Bernoulli struct {
	P float64
}

func (b Bernoulli) Sample(r *RNG) float64 {
	if r.Float64() < b.P {
		return 1
	}
	return 0
}
func (b Bernoulli) Mean() float64 { return b.P }

// Hit draws a Bernoulli trial directly as a bool.
func (r *RNG) Hit(p float64) bool { return r.Float64() < p }

// Component is one branch of a Mixture.
type Component struct {
	Weight float64
	Dist   Dist
}

// Mixture draws from one of its components with probability proportional to
// its weight. It models multi-modal measurements such as the paper's Fig. 5
// TCP bandwidth (well-placed VM pairs vs congested ones).
type Mixture struct {
	Components []Component
	total      float64
}

// NewMixture validates and returns a mixture.
func NewMixture(components ...Component) *Mixture {
	m := &Mixture{Components: components}
	for _, c := range components {
		if c.Weight < 0 {
			panic("simrand: negative mixture weight")
		}
		m.total += c.Weight
	}
	if m.total == 0 {
		panic("simrand: empty mixture")
	}
	return m
}

func (m *Mixture) Sample(r *RNG) float64 {
	u := r.Float64() * m.total
	for _, c := range m.Components {
		if u < c.Weight {
			return c.Dist.Sample(r)
		}
		u -= c.Weight
	}
	return m.Components[len(m.Components)-1].Dist.Sample(r)
}

func (m *Mixture) Mean() float64 {
	var s float64
	for _, c := range m.Components {
		s += c.Weight / m.total * c.Dist.Mean()
	}
	return s
}

// CDFPoint is one knot of an empirical CDF.
type CDFPoint struct {
	Value float64 // sample value
	P     float64 // cumulative probability at Value, in (0, 1]
}

// Empirical samples by inverse transform over a piecewise-linear CDF. It is
// the workhorse for "reproduce this published histogram" distributions
// (Figs. 4 and 5).
type Empirical struct {
	points []CDFPoint
}

// NewEmpirical builds an empirical distribution from CDF knots, which must
// be strictly increasing in both value and probability, ending at P = 1.
func NewEmpirical(points ...CDFPoint) *Empirical {
	if len(points) == 0 {
		panic("simrand: empty empirical CDF")
	}
	for i := 1; i < len(points); i++ {
		if points[i].Value <= points[i-1].Value || points[i].P <= points[i-1].P {
			panic("simrand: empirical CDF knots must be strictly increasing")
		}
	}
	last := points[len(points)-1]
	if last.P < 0.999999 || last.P > 1.000001 {
		panic("simrand: empirical CDF must end at P=1")
	}
	return &Empirical{points: points}
}

func (e *Empirical) Sample(r *RNG) float64 {
	u := r.Float64()
	prevV, prevP := e.points[0].Value, 0.0
	// Below the first knot, interpolate from (Value[0], 0) treating the
	// first knot as the end of the first segment.
	if len(e.points) > 1 {
		prevV = e.points[0].Value
		prevP = e.points[0].P
		if u <= prevP {
			return prevV
		}
	}
	for _, pt := range e.points[1:] {
		if u <= pt.P {
			frac := (u - prevP) / (pt.P - prevP)
			return prevV + frac*(pt.Value-prevV)
		}
		prevV, prevP = pt.Value, pt.P
	}
	return e.points[len(e.points)-1].Value
}

func (e *Empirical) Mean() float64 {
	// Mean of the piecewise-linear CDF: mass at the first knot plus trapezoid
	// midpoints for each segment.
	m := e.points[0].Value * e.points[0].P
	prev := e.points[0]
	for _, pt := range e.points[1:] {
		m += (pt.P - prev.P) * (prev.Value + pt.Value) / 2
		prev = pt
	}
	return m
}

// WeightedChoice picks index i with probability weights[i]/sum(weights).
func (r *RNG) WeightedChoice(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	u := r.Float64() * total
	for i, w := range weights {
		if u < w {
			return i
		}
		u -= w
	}
	return len(weights) - 1
}

// Scaled wraps a distribution multiplied by a constant factor.
type Scaled struct {
	D      Dist
	Factor float64
}

func (s Scaled) Sample(r *RNG) float64 { return s.D.Sample(r) * s.Factor }
func (s Scaled) Mean() float64         { return s.D.Mean() * s.Factor }

// Shifted wraps a distribution plus a constant offset.
type Shifted struct {
	D      Dist
	Offset float64
}

func (s Shifted) Sample(r *RNG) float64 { return s.D.Sample(r) + s.Offset }
func (s Shifted) Mean() float64         { return s.D.Mean() + s.Offset }
