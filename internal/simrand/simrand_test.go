package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

const samples = 200000

func sampleMean(d Dist, r *RNG, n int) float64 {
	var s float64
	for i := 0; i < n; i++ {
		s += d.Sample(r)
	}
	return s / float64(n)
}

func TestForkDeterministic(t *testing.T) {
	a := New(1).Fork("blob")
	b := New(1).Fork("blob")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (seed,label) fork produced different streams")
		}
	}
}

func TestForkDecorrelated(t *testing.T) {
	a := New(1).Fork("blob")
	b := New(1).Fork("table")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct labels collided %d times in 1000 draws", same)
	}
}

func TestForkNDistinct(t *testing.T) {
	root := New(7)
	seen := map[uint64]bool{}
	for i := 0; i < 200; i++ {
		v := root.ForkN("client", i).Uint64()
		if seen[v] {
			t.Fatalf("ForkN stream %d repeats an earlier first draw", i)
		}
		seen[v] = true
	}
}

func TestForkDomainStable(t *testing.T) {
	// A domain's stream depends only on (seed, index): equal to ForkN under
	// the reserved label, distinct across domains, and — the property the
	// domain-sharded drivers lean on — independent of how many domains exist.
	root := New(42)
	seen := map[uint64]bool{}
	for d := 0; d < 16; d++ {
		a := root.ForkDomain(d)
		b := New(42).ForkN("domain", d)
		for i := 0; i < 50; i++ {
			if a.Uint64() != b.Uint64() {
				t.Fatalf("ForkDomain(%d) diverges from ForkN(\"domain\", %d)", d, d)
			}
		}
		first := New(42).ForkDomain(d).Uint64()
		if seen[first] {
			t.Fatalf("domain %d stream repeats an earlier first draw", d)
		}
		seen[first] = true
	}
}

func TestForkIndependentOfConsumptionOrder(t *testing.T) {
	// Drawing from the root stream must not perturb forked streams.
	r1 := New(3)
	f1 := r1.Fork("x")
	want := f1.Uint64()

	r2 := New(3)
	r2.Uint64() // extra consumption
	r2.Uint64()
	f2 := r2.Fork("x")
	if got := f2.Uint64(); got != want {
		t.Fatal("fork stream depends on root consumption")
	}
}

func TestConst(t *testing.T) {
	r := New(1)
	d := Const(4.2)
	if d.Sample(r) != 4.2 || d.Mean() != 4.2 {
		t.Fatal("Const broken")
	}
}

func TestUniformMoments(t *testing.T) {
	r := New(2)
	d := Uniform{Lo: 3, Hi: 9}
	m := sampleMean(d, r, samples)
	if math.Abs(m-6) > 0.02 {
		t.Fatalf("uniform mean = %.4f, want 6", m)
	}
	for i := 0; i < 1000; i++ {
		v := d.Sample(r)
		if v < 3 || v >= 9 {
			t.Fatalf("uniform sample %v outside [3,9)", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(3)
	d := Exponential{Rate: 0.25}
	m := sampleMean(d, r, samples)
	if math.Abs(m-4)/4 > 0.02 {
		t.Fatalf("exponential mean = %.4f, want 4", m)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(4)
	d := Normal{Mu: 10, Sigma: 2}
	var s, s2 float64
	for i := 0; i < samples; i++ {
		v := d.Sample(r)
		s += v
		s2 += v * v
	}
	mean := s / samples
	std := math.Sqrt(s2/samples - mean*mean)
	if math.Abs(mean-10) > 0.05 || math.Abs(std-2) > 0.05 {
		t.Fatalf("normal mean/std = %.3f/%.3f, want 10/2", mean, std)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	r := New(5)
	d := TruncNormal{Mu: 1, Sigma: 5, Lo: 0, Hi: 3}
	for i := 0; i < 10000; i++ {
		v := d.Sample(r)
		if v < 0 || v > 3 {
			t.Fatalf("truncated sample %v outside [0,3]", v)
		}
	}
}

func TestTruncNormalDegenerateClamps(t *testing.T) {
	r := New(6)
	// Range far from the mode: rejection gives up and clamps.
	d := TruncNormal{Mu: 0, Sigma: 0.001, Lo: 100, Hi: 200}
	if v := d.Sample(r); v != 100 {
		t.Fatalf("degenerate trunc normal = %v, want clamp at 100", v)
	}
}

func TestPosNormal(t *testing.T) {
	r := New(7)
	d := PosNormal(86, 27) // Table 1: worker-small create
	m := sampleMean(d, r, samples)
	if math.Abs(m-86) > 0.5 {
		t.Fatalf("PosNormal mean = %.2f, want ~86", m)
	}
	for i := 0; i < 10000; i++ {
		if d.Sample(r) < 0 {
			t.Fatal("PosNormal produced a negative duration")
		}
	}
}

func TestPosNormalMeanRecoversMean(t *testing.T) {
	r := New(21)
	cases := []struct{ mean, sigma float64 }{
		{6, 5},    // Table 1 delete: heavy truncation bias if naive
		{40, 30},  // Table 1 worker-small suspend
		{533, 36}, // negligible truncation
	}
	for _, c := range cases {
		d := PosNormalMean(c.mean, c.sigma)
		m := sampleMean(d, r, samples)
		if math.Abs(m-c.mean)/c.mean > 0.02 {
			t.Fatalf("PosNormalMean(%v,%v) sample mean = %.3f", c.mean, c.sigma, m)
		}
		for i := 0; i < 5000; i++ {
			if d.Sample(r) < 0 {
				t.Fatal("negative sample")
			}
		}
	}
	// Degenerate inputs fall back gracefully.
	if d := PosNormalMean(5, 0); d.Sample(r) < 0 {
		t.Fatal("zero-sigma fallback broken")
	}
}

func TestLogNormalMeanCV(t *testing.T) {
	r := New(8)
	d := LogNormalMeanCV(0.050, 0.3)
	m := sampleMean(d, r, samples)
	if math.Abs(m-0.050)/0.050 > 0.02 {
		t.Fatalf("lognormal mean = %.5f, want 0.050", m)
	}
	if math.Abs(d.Mean()-0.050) > 1e-9 {
		t.Fatalf("analytic mean = %v, want 0.050", d.Mean())
	}
}

func TestParetoTail(t *testing.T) {
	r := New(9)
	d := Pareto{Xm: 1, Alpha: 2}
	m := sampleMean(d, r, samples)
	if math.Abs(m-2) > 0.1 {
		t.Fatalf("pareto mean = %.3f, want 2", m)
	}
	for i := 0; i < 1000; i++ {
		if d.Sample(r) < 1 {
			t.Fatal("pareto sample below scale")
		}
	}
	if !math.IsInf(Pareto{Xm: 1, Alpha: 0.9}.Mean(), 1) {
		t.Fatal("pareto alpha<=1 mean should be +Inf")
	}
}

func TestBernoulli(t *testing.T) {
	r := New(10)
	d := Bernoulli{P: 0.026} // the paper's VM startup failure rate
	m := sampleMean(d, r, samples)
	if math.Abs(m-0.026) > 0.002 {
		t.Fatalf("bernoulli rate = %.4f, want 0.026", m)
	}
}

func TestMixtureWeights(t *testing.T) {
	r := New(11)
	m := NewMixture(
		Component{Weight: 0.5, Dist: Const(1)},
		Component{Weight: 0.35, Dist: Const(2)},
		Component{Weight: 0.15, Dist: Const(3)},
	)
	counts := map[float64]int{}
	n := 100000
	for i := 0; i < n; i++ {
		counts[m.Sample(r)]++
	}
	if math.Abs(float64(counts[1])/float64(n)-0.5) > 0.01 ||
		math.Abs(float64(counts[2])/float64(n)-0.35) > 0.01 ||
		math.Abs(float64(counts[3])/float64(n)-0.15) > 0.01 {
		t.Fatalf("mixture proportions off: %v", counts)
	}
	if math.Abs(m.Mean()-(0.5+0.7+0.45)) > 1e-9 {
		t.Fatalf("mixture mean = %v", m.Mean())
	}
}

func TestMixtureValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty", func() { NewMixture() })
	mustPanic("negative weight", func() {
		NewMixture(Component{Weight: -1, Dist: Const(0)})
	})
}

func TestEmpiricalQuantiles(t *testing.T) {
	r := New(12)
	// Fig. 4-like CDF: 50% at 1ms, 75% by 2ms, 100% by 10ms.
	d := NewEmpirical(
		CDFPoint{Value: 1, P: 0.50},
		CDFPoint{Value: 2, P: 0.75},
		CDFPoint{Value: 10, P: 1.00},
	)
	n := 200000
	le1, le2 := 0, 0
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		if v < 1 || v > 10 {
			t.Fatalf("sample %v outside [1,10]", v)
		}
		if v <= 1 {
			le1++
		}
		if v <= 2 {
			le2++
		}
	}
	if p := float64(le1) / float64(n); math.Abs(p-0.50) > 0.01 {
		t.Fatalf("P(≤1) = %.3f, want 0.50", p)
	}
	if p := float64(le2) / float64(n); math.Abs(p-0.75) > 0.01 {
		t.Fatalf("P(≤2) = %.3f, want 0.75", p)
	}
}

func TestEmpiricalValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty", func() { NewEmpirical() })
	mustPanic("non-increasing values", func() {
		NewEmpirical(CDFPoint{2, 0.5}, CDFPoint{1, 1})
	})
	mustPanic("non-increasing probs", func() {
		NewEmpirical(CDFPoint{1, 0.6}, CDFPoint{2, 0.5})
	})
	mustPanic("does not reach 1", func() {
		NewEmpirical(CDFPoint{1, 0.5}, CDFPoint{2, 0.9})
	})
}

func TestWeightedChoice(t *testing.T) {
	r := New(13)
	w := []float64{1, 3, 6}
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[r.WeightedChoice(w)]++
	}
	for i, want := range []float64{0.1, 0.3, 0.6} {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("choice %d freq = %.3f, want %.1f", i, got, want)
		}
	}
}

func TestScaledShifted(t *testing.T) {
	r := New(14)
	base := Uniform{Lo: 0, Hi: 2}
	s := Scaled{D: base, Factor: 3}
	sh := Shifted{D: base, Offset: 10}
	if math.Abs(s.Mean()-3) > 1e-9 || math.Abs(sh.Mean()-11) > 1e-9 {
		t.Fatal("analytic means of wrappers wrong")
	}
	if m := sampleMean(s, r, samples); math.Abs(m-3) > 0.02 {
		t.Fatalf("scaled mean = %.3f", m)
	}
	if m := sampleMean(sh, r, samples); math.Abs(m-11) > 0.02 {
		t.Fatalf("shifted mean = %.3f", m)
	}
}

func TestDurationClampsNegative(t *testing.T) {
	r := New(15)
	if d := Duration(Const(-5), r); d != 0 {
		t.Fatalf("negative duration not clamped: %v", d)
	}
	if d := Duration(Const(1.5), r); d.Seconds() != 1.5 {
		t.Fatalf("duration = %v, want 1.5s", d)
	}
}

// Property: empirical CDF samples always lie within [first, last] knot
// values, for arbitrary increasing knot sets.
func TestPropertyEmpiricalRange(t *testing.T) {
	f := func(seed uint64, rawVals [4]uint16) bool {
		vals := make([]float64, 0, 4)
		prev := -1.0
		for _, rv := range rawVals {
			v := float64(rv)
			if v <= prev {
				v = prev + 1
			}
			vals = append(vals, v)
			prev = v
		}
		d := NewEmpirical(
			CDFPoint{vals[0], 0.25},
			CDFPoint{vals[1], 0.5},
			CDFPoint{vals[2], 0.75},
			CDFPoint{vals[3], 1.0},
		)
		r := New(seed)
		for i := 0; i < 200; i++ {
			v := d.Sample(r)
			if v < vals[0] || v > vals[3] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Hit(p) frequency tracks p for arbitrary p in [0,1].
func TestPropertyHitRate(t *testing.T) {
	f := func(seed uint64, praw uint8) bool {
		p := float64(praw) / 255
		r := New(seed)
		hits := 0
		n := 20000
		for i := 0; i < n; i++ {
			if r.Hit(p) {
				hits++
			}
		}
		return math.Abs(float64(hits)/float64(n)-p) < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
